// Tests: the IQ segment wire format, its strict decoder (fuzz/adversarial
// inputs — runs under the CI sanitizer jobs), the SegmentQueue transport,
// the producer/replay devices, and a small end-to-end decode farm.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "calib/ingest.hpp"
#include "net/decode_farm.hpp"
#include "net/queue.hpp"
#include "net/segment.hpp"
#include "scenario/testbed.hpp"
#include "sdr/fault.hpp"
#include "sdr/replay.hpp"
#include "sdr/segmentize.hpp"
#include "util/rng.hpp"

namespace net = speccal::net;
namespace cal = speccal::calib;
namespace sdr = speccal::sdr;
namespace sc = speccal::scenario;
namespace dsp = speccal::dsp;

namespace {

constexpr std::uint64_t kSeed = 2024;

dsp::Buffer make_samples(std::size_t count, std::uint64_t seed) {
  speccal::util::Rng rng(seed);
  dsp::Buffer buf(count);
  for (auto& s : buf)
    s = dsp::Sample(static_cast<float>(rng.normal(0.0, 0.3)),
                    static_cast<float>(rng.normal(0.0, 0.3)));
  return buf;
}

net::CaptureMeta test_meta() {
  net::CaptureMeta meta;
  meta.center_freq_hz = 605e6;
  meta.sample_rate_hz = 2.4e6;
  meta.gain_db = 30.0;
  meta.timestamp_s = 1.25;
  return meta;
}

/// Encode one capture into a single segment (fits one segment by
/// construction in these tests).
net::Segment encode_one(net::Encoding encoding, std::span<const dsp::Sample> samples,
                        std::uint32_t stream_id = 7) {
  net::SegmentWriterConfig cfg;
  cfg.encoding = encoding;
  net::SegmentWriter writer(cfg, stream_id);
  net::Segment out;
  writer.write_capture(test_meta(), samples, [&](net::Segment&& s) {
    out = std::move(s);
  });
  return out;
}

net::SegmentView parse_ok(const net::Segment& seg) {
  net::SegmentView view;
  const auto status = net::parse_segment(seg.bytes, view);
  EXPECT_EQ(status, net::DecodeStatus::kOk) << net::to_string(status);
  return view;
}

}  // namespace

// --------------------------------------------------------------- format ----

TEST(Segment, Float32RoundTripIsBitwise) {
  const auto samples = make_samples(1000, 1);
  const auto seg = encode_one(net::Encoding::kFloat32, samples);
  EXPECT_EQ(seg.size(), net::kHeaderSize + 8 * samples.size() + net::kCrcSize);

  const auto view = parse_ok(seg);
  EXPECT_EQ(view.header.version, net::kWireVersion);
  EXPECT_EQ(view.header.stream_id, 7u);
  EXPECT_EQ(view.header.sequence, 0u);
  EXPECT_EQ(view.header.sample_count, samples.size());
  EXPECT_EQ(view.header.center_freq_hz, 605e6);
  EXPECT_EQ(view.header.sample_rate_hz, 2.4e6);
  EXPECT_EQ(view.header.gain_db, 30.0);
  EXPECT_EQ(view.header.timestamp_s, 1.25);
  EXPECT_FALSE(view.header.end_of_stream());

  dsp::Buffer decoded;
  net::decode_payload(view, decoded);
  ASSERT_EQ(decoded.size(), samples.size());
  EXPECT_EQ(0, std::memcmp(decoded.data(), samples.data(),
                           samples.size() * sizeof(dsp::Sample)));
}

TEST(Segment, LossyEncodingsStayWithinDocumentedTolerance) {
  const auto samples = make_samples(4096, 2);
  float peak = 0.0f;
  for (const auto& s : samples)
    peak = std::max({peak, std::abs(s.real()), std::abs(s.imag())});

  struct Case {
    net::Encoding encoding;
    double tolerance;
  };
  // Documented worst-case error per reconstructed component (segment.hpp):
  // float16 is relative to magnitude (<= 2^-11 for |v| <= 1; our samples
  // stay within a few units), fixed-point is relative to the per-segment
  // scale plus a couple of ULPs of float rounding in the encode/decode
  // arithmetic (the documented bound is the real-arithmetic one).
  const double ulps = std::ldexp(static_cast<double>(peak), -22);
  const Case cases[] = {
      {net::Encoding::kFloat16, std::ldexp(1.0, -11) * std::max(1.0f, peak)},
      {net::Encoding::kFixed8, static_cast<double>(peak) / 254.0 + ulps},
      {net::Encoding::kFixed12, static_cast<double>(peak) / 4094.0 + ulps},
  };
  for (const Case& c : cases) {
    const auto seg = encode_one(c.encoding, samples);
    const auto view = parse_ok(seg);
    dsp::Buffer decoded;
    net::decode_payload(view, decoded);
    ASSERT_EQ(decoded.size(), samples.size()) << net::to_string(c.encoding);
    double worst = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      worst = std::max(worst,
                       static_cast<double>(std::abs(decoded[i].real() -
                                                    samples[i].real())));
      worst = std::max(worst,
                       static_cast<double>(std::abs(decoded[i].imag() -
                                                    samples[i].imag())));
    }
    EXPECT_LE(worst, c.tolerance) << net::to_string(c.encoding);
  }
}

TEST(Segment, WriterSplitsLargeCapturesAndCountsSequence) {
  net::SegmentWriterConfig cfg;
  cfg.max_samples_per_segment = 100;
  net::SegmentWriter writer(cfg, 3);
  const auto samples = make_samples(250, 3);

  std::vector<net::Segment> segments;
  writer.write_capture(test_meta(), samples,
                       [&](net::Segment&& s) { segments.push_back(std::move(s)); });
  writer.finish(test_meta(), [&](net::Segment&& s) { segments.push_back(std::move(s)); });

  ASSERT_EQ(segments.size(), 4u);  // 100 + 100 + 50 + EOS
  std::size_t total = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto view = parse_ok(segments[i]);
    EXPECT_EQ(view.header.sequence, i);
    if (i < 3) {
      EXPECT_EQ(view.header.capture_index, 0u);  // one capture, three chunks
      EXPECT_FALSE(view.header.end_of_stream());
      // Chunk timestamps advance by offset / sample_rate.
      EXPECT_DOUBLE_EQ(view.header.timestamp_s,
                       1.25 + static_cast<double>(total) / 2.4e6);
      total += view.header.sample_count;
    } else {
      EXPECT_EQ(view.header.sample_count, 0u);
      EXPECT_TRUE(view.header.end_of_stream());
    }
  }
  EXPECT_EQ(total, 250u);
  EXPECT_EQ(writer.segments_written(), 4u);
}

TEST(Segment, HalfFloatConversions) {
  // Exact values survive; NaN stays NaN; overflow saturates to +-65504.
  EXPECT_EQ(net::half_to_float(net::float_to_half(0.0f)), 0.0f);
  EXPECT_EQ(net::half_to_float(net::float_to_half(1.0f)), 1.0f);
  EXPECT_EQ(net::half_to_float(net::float_to_half(-0.5f)), -0.5f);
  EXPECT_EQ(net::half_to_float(net::float_to_half(65504.0f)), 65504.0f);
  EXPECT_EQ(net::half_to_float(net::float_to_half(1e30f)), 65504.0f);
  EXPECT_EQ(net::half_to_float(net::float_to_half(-1e30f)), -65504.0f);
  EXPECT_TRUE(std::isnan(net::half_to_float(
      net::float_to_half(std::numeric_limits<float>::quiet_NaN()))));
  // Round-to-nearest-even on a value exactly between two halves.
  const float third = net::half_to_float(net::float_to_half(1.0f / 3.0f));
  EXPECT_NEAR(third, 1.0f / 3.0f, std::ldexp(1.0f, -11));
}

// -------------------------------------------------------------- decoder ----

TEST(SegmentDecoder, RejectsEveryTruncationCleanly) {
  const auto seg = encode_one(net::Encoding::kFixed12, make_samples(64, 4));
  // Every strict prefix must be rejected without UB (ASan/UBSan CI jobs
  // run this loop). Truncations that keep the total structurally
  // consistent do not exist: any byte removed breaks the length equation.
  for (std::size_t len = 0; len < seg.size(); ++len) {
    net::SegmentView view;
    const auto status = net::parse_segment(
        std::span<const std::uint8_t>(seg.bytes.data(), len), view);
    EXPECT_NE(status, net::DecodeStatus::kOk) << "accepted prefix " << len;
  }
}

TEST(SegmentDecoder, RejectsHeaderFieldLies) {
  const auto good = encode_one(net::Encoding::kFloat32, make_samples(32, 5));

  const auto mutated = [&](std::size_t offset, std::uint8_t value) {
    net::Segment seg = good;
    seg.bytes[offset] = value;
    net::SegmentView view;
    return net::parse_segment(seg.bytes, view);
  };

  EXPECT_EQ(mutated(0, 'X'), net::DecodeStatus::kBadMagic);
  EXPECT_EQ(mutated(4, 9), net::DecodeStatus::kBadVersion);   // version = 9
  EXPECT_EQ(mutated(6, 200), net::DecodeStatus::kBadEncoding);
  EXPECT_EQ(mutated(7, 0x80), net::DecodeStatus::kReservedFlags);
  // sample_count changed (offset 20) -> encoded size no longer matches.
  EXPECT_EQ(mutated(20, 33), net::DecodeStatus::kLengthMismatch);
  // payload_bytes changed (offset 24) -> length equation broken.
  EXPECT_EQ(mutated(24, 1), net::DecodeStatus::kLengthMismatch);
  // Payload byte flipped -> CRC catches it.
  EXPECT_EQ(mutated(net::kHeaderSize + 3, 0xFF), net::DecodeStatus::kCrcMismatch);
  // CRC byte flipped -> CRC mismatch.
  EXPECT_EQ(mutated(good.size() - 1, good.bytes.back() ^ 0xFF),
            net::DecodeStatus::kCrcMismatch);
}

TEST(SegmentDecoder, RejectsZeroSampleDataSegment) {
  // A zero-sample segment is only legal as the end-of-stream marker; forge
  // one without the flag (recompute the CRC so only the semantics are bad).
  net::SegmentWriterConfig cfg;
  net::SegmentWriter writer(cfg, 1);
  net::Segment seg;
  writer.finish(test_meta(), [&](net::Segment&& s) { seg = std::move(s); });
  seg.bytes[7] = 0;  // clear the end-of-stream flag
  const std::size_t body = seg.size() - net::kCrcSize;
  const std::uint32_t crc =
      net::crc32(std::span<const std::uint8_t>(seg.bytes.data(), body));
  std::memcpy(seg.bytes.data() + body, &crc, sizeof(crc));

  net::SegmentView view;
  EXPECT_EQ(net::parse_segment(seg.bytes, view),
            net::DecodeStatus::kBadSampleCount);

  // The unmodified marker parses.
  net::Segment eos;
  net::SegmentWriter writer2(cfg, 1);
  writer2.finish(test_meta(), [&](net::Segment&& s) { eos = std::move(s); });
  const auto ok = parse_ok(eos);
  EXPECT_TRUE(ok.header.end_of_stream());
  EXPECT_EQ(ok.header.sample_count, 0u);
}

TEST(SegmentDecoder, RejectsBadFixedPointScale) {
  auto forge_scale = [&](float scale) {
    auto seg = encode_one(net::Encoding::kFixed8, make_samples(16, 6));
    std::memcpy(seg.bytes.data() + 60, &scale, sizeof(scale));
    const std::size_t body = seg.size() - net::kCrcSize;
    const std::uint32_t crc =
        net::crc32(std::span<const std::uint8_t>(seg.bytes.data(), body));
    std::memcpy(seg.bytes.data() + body, &crc, sizeof(crc));
    net::SegmentView view;
    return net::parse_segment(seg.bytes, view);
  };
  EXPECT_EQ(forge_scale(0.0f), net::DecodeStatus::kBadScale);
  EXPECT_EQ(forge_scale(-1.0f), net::DecodeStatus::kBadScale);
  EXPECT_EQ(forge_scale(std::numeric_limits<float>::infinity()),
            net::DecodeStatus::kBadScale);
  EXPECT_EQ(forge_scale(std::numeric_limits<float>::quiet_NaN()),
            net::DecodeStatus::kBadScale);
}

TEST(SegmentDecoder, SeededMutationFuzz) {
  // 2000 random single/multi-byte corruptions over all four encodings: the
  // parser must never accept a corrupted segment as-is unless the flips
  // landed outside the checked bytes — which cannot happen, because every
  // byte is either header (validated + CRC'd) or payload/CRC (CRC'd). So:
  // accepted => the mutation recreated a valid segment (e.g. flipped a bit
  // twice); we only require no crash and consistent decode.
  speccal::util::Rng rng(kSeed);
  const net::Encoding encodings[] = {
      net::Encoding::kFloat32, net::Encoding::kFloat16, net::Encoding::kFixed8,
      net::Encoding::kFixed12};
  std::size_t rejected = 0, accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const auto enc = encodings[iter % 4];
    auto seg = encode_one(enc, make_samples(1 + iter % 97, iter));
    const int flips = 1 + static_cast<int>(rng.uniform() * 4);
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.uniform() *
                                                static_cast<double>(seg.size()));
      seg.bytes[std::min(pos, seg.size() - 1)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform() * 254);
    }
    net::SegmentView view;
    if (net::parse_segment(seg.bytes, view) == net::DecodeStatus::kOk) {
      ++accepted;
      dsp::Buffer decoded;
      net::decode_payload(view, decoded);  // must not crash either way
      EXPECT_EQ(decoded.size(), view.header.sample_count);
    } else {
      ++rejected;
    }
  }
  // CRC-32 makes surviving mutations vanishingly rare.
  EXPECT_GE(rejected, 1990u) << "accepted " << accepted;
}

TEST(SegmentDecoder, ConfigValidationNamesFields) {
  net::SegmentWriterConfig bad_enc;
  bad_enc.encoding = static_cast<net::Encoding>(42);
  EXPECT_THROW(
      {
        try {
          bad_enc.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("SegmentWriterConfig.encoding"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);

  net::SegmentWriterConfig bad_max;
  bad_max.max_samples_per_segment = 0;
  EXPECT_THROW(bad_max.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ transport ----

TEST(SegmentQueue, FifoAndStats) {
  net::SegmentQueue queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (std::uint8_t i = 0; i < 4; ++i) {
    net::Segment s;
    s.bytes = {i};
    EXPECT_TRUE(queue.try_push(std::move(s)));
  }
  net::Segment overflow;
  EXPECT_FALSE(queue.try_push(std::move(overflow)));  // full
  EXPECT_EQ(queue.size(), 4u);

  for (std::uint8_t i = 0; i < 4; ++i) {
    net::Segment out;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out.bytes[0], i);  // FIFO order
  }
  net::Segment empty;
  EXPECT_FALSE(queue.try_pop(empty));

  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, 4u);
  EXPECT_EQ(stats.popped, 4u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.peak_depth, 4u);
}

TEST(SegmentQueue, CloseDrainsThenEndsAndRefusesPush) {
  net::SegmentQueue queue(8);
  net::Segment s;
  s.bytes = {1, 2, 3};
  EXPECT_TRUE(queue.push(std::move(s)));
  queue.close();
  EXPECT_TRUE(queue.closed());

  net::Segment refused;
  EXPECT_FALSE(queue.push(std::move(refused)));  // closed: no new segments

  const auto drained = queue.pop();  // buffered segment still poppable
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->bytes.size(), 3u);
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
}

TEST(SegmentQueue, MpmcHammerDeliversEverySegmentOnce) {
  net::SegmentQueue queue(16);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 500;

  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto seg = queue.pop()) {
        std::uint32_t value;
        std::memcpy(&value, seg->bytes.data(), sizeof(value));
        sum.fetch_add(value, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint32_t value =
            static_cast<std::uint32_t>(p * kPerProducer + i);
        net::Segment s;
        s.bytes.resize(sizeof(value));
        std::memcpy(s.bytes.data(), &value, sizeof(value));
        EXPECT_TRUE(queue.push(std::move(s)));  // blocking: never dropped
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(kConsumers + p)].join();
  queue.close();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<std::size_t>(c)].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(total) * (total - 1) / 2);
  EXPECT_EQ(queue.stats().pushed, static_cast<std::uint64_t>(total));
}

// ------------------------------------------------- record / replay ----------

TEST(Replay, SegmentizingDeviceIsTransparentAndReplayIsBitwise) {
  const auto world = sc::make_world(kSeed);
  const auto site = sc::make_site(sc::Site::kRooftop, kSeed);

  // Reference: bare device, a few captures.
  auto bare = sc::make_owned_node(sc::Site::kRooftop, world, kSeed);
  // Recorded: identical device wrapped in a SegmentizingDevice.
  std::vector<net::Segment> wire;
  net::SegmentWriterConfig wcfg;  // float32
  auto wrapped = std::make_unique<sdr::SegmentizingDevice>(
      sc::make_owned_node(sc::Site::kRooftop, world, kSeed), wcfg, 11,
      [&](net::Segment&& s) { wire.push_back(std::move(s)); });

  auto drive = [](sdr::Device& dev) {
    dev.set_gain_mode(sdr::GainMode::kManual);
    dev.set_gain_db(40.0);
    dsp::Buffer all;
    for (const double freq : {605e6, 521e6}) {
      EXPECT_TRUE(dev.tune(freq, 2.4e6));
      const auto buf = dev.capture(4096);
      all.insert(all.end(), buf.begin(), buf.end());
    }
    return all;
  };

  const auto reference = drive(*bare);
  const auto recorded = drive(*wrapped);
  ASSERT_EQ(reference.size(), recorded.size());
  // Transparent decorator: wrapped output bitwise equals bare output.
  EXPECT_EQ(0, std::memcmp(reference.data(), recorded.data(),
                           reference.size() * sizeof(dsp::Sample)));
  wrapped->finish();

  // Decode the wire stream back into capture records.
  auto records = std::make_shared<std::vector<sdr::CaptureRecord>>();
  dsp::Buffer scratch;
  for (const auto& seg : wire) {
    net::SegmentView view;
    ASSERT_EQ(net::parse_segment(seg.bytes, view), net::DecodeStatus::kOk);
    if (view.header.sample_count == 0) continue;  // EOS
    net::decode_payload(view, scratch);
    sdr::CaptureRecord rec;
    rec.center_freq_hz = view.header.center_freq_hz;
    rec.sample_rate_hz = view.header.sample_rate_hz;
    rec.gain_db = view.header.gain_db;
    rec.timestamp_s = view.header.timestamp_s;
    rec.samples = scratch;
    records->push_back(std::move(rec));
  }
  ASSERT_EQ(records->size(), 2u);

  // Replay serves the same bytes through the same device interface.
  sdr::ReplayDevice replay(bare->info(), bare->position(), records,
                           site.rx_environment());
  const auto replayed = drive(replay);
  ASSERT_EQ(replayed.size(), reference.size());
  EXPECT_EQ(0, std::memcmp(replayed.data(), reference.data(),
                           reference.size() * sizeof(dsp::Sample)));
  EXPECT_EQ(replay.records_consumed(), 2u);
  EXPECT_EQ(replay.records_remaining(), 0u);
}

TEST(Replay, DivergentReplayThrowsInsteadOfMiscalibrating) {
  auto records = std::make_shared<std::vector<sdr::CaptureRecord>>();
  sdr::CaptureRecord rec;
  rec.center_freq_hz = 605e6;
  rec.sample_rate_hz = 2.4e6;
  rec.timestamp_s = 0.0;
  rec.samples = make_samples(64, 9);
  records->push_back(std::move(rec));

  sdr::DeviceInfo info = sdr::SimulatedSdr::bladerf_like_info();
  sdr::ReplayDevice dev(info, speccal::geo::Geodetic{}, records);
  EXPECT_TRUE(dev.tune(521e6, 2.4e6));          // different frequency...
  EXPECT_THROW(dev.capture(64), std::runtime_error);

  sdr::ReplayDevice dev2(info, speccal::geo::Geodetic{}, records);
  EXPECT_TRUE(dev2.tune(605e6, 2.4e6));
  EXPECT_THROW(dev2.capture(63), std::runtime_error);  // wrong count
  const auto buf = dev2.capture(64);                   // correct request works
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_THROW(dev2.capture(64), std::runtime_error);  // records exhausted
}

// ------------------------------------------------------------ the farm -----

TEST(DecodeFarm, EndToEndFloat32ReportsAreBitwiseIdentical) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline.survey.fidelity = cal::Fidelity::kLinkBudget;
  run.pipeline.survey.duration_s = 10.0;
  run.executor.threads = 2;

  constexpr std::size_t kNodes = 3;
  std::vector<sc::SiteSetup> sites;
  for (std::size_t i = 0; i < kNodes; ++i)
    sites.push_back(sc::make_site(static_cast<sc::Site>(i % 3), kSeed));

  // --- producer side: calibrate through segmentizing devices ------------
  // The whole stream is buffered before the farm drains it, so the queue
  // must hold every segment (blocking pushes would deadlock otherwise).
  net::SegmentQueue queue(4096);
  cal::NodeRegistry baseline;
  {
    cal::FleetCalibrator producer(world, run);
    std::vector<cal::FleetJob> jobs;
    for (std::size_t i = 0; i < kNodes; ++i) {
      cal::FleetJob job;
      job.claims.node_id = "node-" + std::to_string(i);
      job.claims.claims_omnidirectional = false;
      const auto site = static_cast<sc::Site>(i % 3);
      job.make_device = [&world, &queue, site, i] {
        net::SegmentWriterConfig wcfg;  // float32 passthrough
        return std::make_unique<sdr::SegmentizingDevice>(
            sc::make_owned_node(site, world, kSeed), wcfg,
            static_cast<std::uint32_t>(i),
            [&queue](net::Segment&& s) { queue.push(std::move(s)); });
      };
      jobs.push_back(std::move(job));
    }
    const auto summary = producer.run(std::move(jobs), baseline);
    ASSERT_EQ(summary.calibrated, kNodes);
    ASSERT_EQ(summary.failed, 0u);
  }
  queue.close();

  // --- backend side: decode farm over the recorded segments -------------
  net::DecodeFarm farm(world, run, net::DecodeFarmConfig{2});
  for (std::size_t i = 0; i < kNodes; ++i) {
    net::NodeManifest manifest;
    manifest.claims.node_id = "node-" + std::to_string(i);
    manifest.claims.claims_omnidirectional = false;
    manifest.info = sdr::SimulatedSdr::bladerf_like_info();
    manifest.position = sites[i].position;
    manifest.rx = sites[i].rx_environment();
    farm.register_node(static_cast<std::uint32_t>(i), manifest);
  }
  cal::NodeRegistry decoded;
  const auto stats = farm.run(queue, decoded);

  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.unknown_streams, 0u);
  EXPECT_EQ(stats.nodes_ready, kNodes);
  EXPECT_EQ(stats.nodes_incomplete, 0u);
  EXPECT_EQ(stats.nodes_calibrated, kNodes);
  EXPECT_EQ(stats.nodes_failed, 0u);
  EXPECT_GT(stats.captures, 0u);

  // The gate: float32 round-trip reports bitwise-identical to in-process
  // (wall-clock stage timings excluded — they are the one nondeterministic
  // field, which is exactly why write_json grew the flag).
  for (std::size_t i = 0; i < kNodes; ++i) {
    const std::string id = "node-" + std::to_string(i);
    const auto* a = baseline.find(id);
    const auto* b = decoded.find(id);
    ASSERT_NE(a, nullptr) << id;
    ASSERT_NE(b, nullptr) << id;
    EXPECT_EQ(0, std::memcmp(&a->trust.score, &b->trust.score, sizeof(double)))
        << id;
    std::ostringstream ja, jb;
    a->write_json(ja, /*include_stage_metrics=*/false);
    b->write_json(jb, /*include_stage_metrics=*/false);
    EXPECT_EQ(ja.str(), jb.str()) << id;
  }
}

TEST(DecodeFarm, IncompleteAndUnknownStreamsAreCountedNotCalibrated) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline.survey.fidelity = cal::Fidelity::kLinkBudget;
  run.pipeline.survey.duration_s = 10.0;
  run.executor.threads = 1;

  net::SegmentQueue queue(32);
  net::SegmentWriterConfig wcfg;
  // Stream 1 is registered but never sends EOS; stream 2 is unknown.
  net::SegmentWriter w1(wcfg, 1);
  net::SegmentWriter w2(wcfg, 2);
  const auto samples = make_samples(128, 10);
  auto push = [&](net::Segment&& s) { queue.push(std::move(s)); };
  w1.write_capture(test_meta(), samples, push);
  w2.write_capture(test_meta(), samples, push);
  w2.finish(test_meta(), push);
  // And one garbage blob.
  net::Segment garbage;
  garbage.bytes.assign(300, 0xAB);
  queue.push(std::move(garbage));
  queue.close();

  net::DecodeFarm farm(world, run);
  net::NodeManifest manifest;
  manifest.claims.node_id = "node-1";
  manifest.info = sdr::SimulatedSdr::bladerf_like_info();
  farm.register_node(1, manifest);

  cal::NodeRegistry registry;
  const auto stats = farm.run(queue, registry);
  EXPECT_EQ(stats.decode_errors, 1u);     // the garbage blob
  EXPECT_EQ(stats.unknown_streams, 2u);   // stream 2's capture + EOS
  EXPECT_EQ(stats.nodes_incomplete, 1u);  // stream 1 never finished
  EXPECT_EQ(stats.nodes_ready, 0u);
  EXPECT_EQ(stats.nodes_calibrated, 0u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(DecodeFarm, ConfigValidationNamesFields) {
  net::DecodeFarmConfig bad_threads;
  bad_threads.decode_threads = 0;
  try {
    bad_threads.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("DecodeFarmConfig.decode_threads"),
              std::string::npos);
  }
  net::DecodeFarmConfig bad_bytes;
  bad_bytes.max_segment_bytes = 1;
  EXPECT_THROW(bad_bytes.validate(), std::invalid_argument);
}

// ------------------------------------------- validation conformance --------

TEST(Validation, EveryPublicConfigNamesTheOffendingField) {
  // The shared convention (DESIGN.md §13): validate() throws
  // std::invalid_argument whose message starts with ConfigName.field.
  const auto message_of = [](auto&& thrower) -> std::string {
    try {
      thrower();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  cal::RunConfig bad_run;
  bad_run.retry.max_attempts = 0;
  EXPECT_NE(message_of([&] { bad_run.validate(); })
                .find("RunConfig.retry.max_attempts"),
            std::string::npos);

  sdr::FaultProfile bad_profile;
  bad_profile.retry_max_attempts = 0;
  EXPECT_NE(message_of([&] { bad_profile.validate(); })
                .find("FaultProfile.retry_max_attempts"),
            std::string::npos);
  sdr::FaultProfile bad_spec;
  bad_spec.nodes.push_back(
      {0, {sdr::FaultSpec{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, 1,
                          0.0, 2.0}}});
  EXPECT_NE(message_of([&] { bad_spec.validate(); })
                .find("FaultProfile.nodes[0].faults[0].probability"),
            std::string::npos);

  net::SegmentWriterConfig bad_writer;
  bad_writer.max_samples_per_segment = net::kMaxSegmentSamples + 1;
  EXPECT_NE(message_of([&] { bad_writer.validate(); })
                .find("SegmentWriterConfig.max_samples_per_segment"),
            std::string::npos);

  net::DecodeFarmConfig bad_farm;
  bad_farm.decode_threads = 0;
  EXPECT_NE(message_of([&] { bad_farm.validate(); })
                .find("DecodeFarmConfig.decode_threads"),
            std::string::npos);

  EXPECT_NE(message_of([] { net::SegmentQueue queue(0); })
                .find("SegmentQueue.capacity"),
            std::string::npos);
}
