// Tests: scenario:: adversary pack — RF-level attack sources, profile
// parsing/validation, and the world-seed emitter contract the
// fleet-consensus detector depends on.
//
// Each adversary is exercised at the waveform level (render through the
// same CaptureContext the simulated SDR uses) so the tests lock RF
// signatures, not detector behavior: band placement, coherence (lag-1
// rho), burst presence, PSS correlation. Detector end-to-end coverage
// lives in test_anomaly.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "adsb/ppm.hpp"
#include "cellular/pss.hpp"
#include "dsp/iq.hpp"
#include "scenario/adversary.hpp"
#include "scenario/testbed.hpp"
#include "sdr/sim.hpp"
#include "tv/channels.hpp"

namespace sc = speccal::scenario;
namespace sd = speccal::sdr;
namespace d = speccal::dsp;
namespace tv = speccal::tv;
namespace cel = speccal::cellular;

namespace {

/// Accumulate every source into one zeroed capture buffer (the simulated
/// front end's render path, minus noise and quantization).
d::Buffer render_all(
    const std::vector<std::shared_ptr<sd::SignalSource>>& sources,
    double center_hz, double fs, std::size_t count,
    const sd::RxEnvironment& rx, double start_time_s = 0.0) {
  d::Buffer accum(count, {0.0f, 0.0f});
  sd::CaptureContext ctx;
  ctx.center_freq_hz = center_hz;
  ctx.sample_rate_hz = fs;
  ctx.start_time_s = start_time_s;
  ctx.sample_count = count;
  ctx.rx = &rx;
  for (const auto& source : sources) source->render(ctx, accum);
  return accum;
}

bool is_silent(const d::Buffer& buffer) {
  for (const auto& v : buffer)
    if (v.real() != 0.0f || v.imag() != 0.0f) return false;
  return true;
}

double ch_center(int channel) { return tv::channel_center_hz(channel).value(); }

/// Rooftop receive environment (kept alive by the returned SiteSetup).
struct RxFixture {
  sc::SiteSetup site = sc::make_site(sc::Site::kRooftop);
  sd::RxEnvironment rx = site.rx_environment();
};

}  // namespace

// --- profile resolution and validation --------------------------------------

TEST(AdversaryProfile, BuiltinsResolve) {
  EXPECT_TRUE(sc::make_adversary_profile("none").empty());

  for (const auto& [name, kind] :
       {std::pair{"jammer", sc::AdversaryKind::kWidebandJammer},
        std::pair{"swept", sc::AdversaryKind::kSweptJammer},
        std::pair{"cw", sc::AdversaryKind::kSpuriousCw},
        std::pair{"intermod", sc::AdversaryKind::kIntermodPair},
        std::pair{"ghost-adsb", sc::AdversaryKind::kGhostAdsb},
        std::pair{"rogue-pss", sc::AdversaryKind::kRoguePss}}) {
    const auto profile = sc::make_adversary_profile(name);
    ASSERT_EQ(profile.nodes.size(), 1u) << name;
    EXPECT_EQ(profile.nodes.front().index, 3u) << name;
    ASSERT_EQ(profile.nodes.front().adversaries.size(), 1u) << name;
    EXPECT_EQ(profile.nodes.front().adversaries.front().kind, kind) << name;
  }

  // "mixed" scripts all six kinds on six distinct victims, all < 20 so any
  // fleet of 20+ nodes can host the full pack.
  const auto mixed = sc::make_adversary_profile("mixed");
  ASSERT_EQ(mixed.nodes.size(), 6u);
  std::vector<std::size_t> indices;
  std::vector<sc::AdversaryKind> kinds;
  for (const auto& n : mixed.nodes) {
    EXPECT_LT(n.index, 20u);
    indices.push_back(n.index);
    ASSERT_EQ(n.adversaries.size(), 1u);
    kinds.push_back(n.adversaries.front().kind);
  }
  EXPECT_EQ(indices, (std::vector<std::size_t>{2, 5, 7, 11, 13, 17}));
  for (int k = 0; k < 6; ++k)
    EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                        static_cast<sc::AdversaryKind>(k)),
              kinds.end())
        << "kind " << k << " missing from mixed";

  EXPECT_THROW(sc::make_adversary_profile("no-such-profile"),
               std::invalid_argument);
}

TEST(AdversaryProfile, InlineJsonParses) {
  const auto profile = sc::make_adversary_profile(
      R"({"name":"custom","seed":9,"nodes":[)"
      R"({"index":4,"adversaries":[{"kind":"spurious-cw","eirp_dbm":25,)"
      R"("range_m":200,"azimuth_deg":200}]},)"
      R"({"index":6,"adversaries":[{"kind":"ghost-adsb"},{"kind":"rogue-pss"}]}]})");
  EXPECT_EQ(profile.name, "custom");
  EXPECT_EQ(profile.seed, 9u);
  ASSERT_EQ(profile.nodes.size(), 2u);
  const auto& cw = profile.nodes[0].adversaries.front();
  EXPECT_EQ(cw.kind, sc::AdversaryKind::kSpuriousCw);
  EXPECT_DOUBLE_EQ(cw.eirp_dbm, 25.0);
  EXPECT_DOUBLE_EQ(cw.range_m, 200.0);
  EXPECT_DOUBLE_EQ(cw.azimuth_deg, 200.0);
  ASSERT_EQ(profile.nodes[1].adversaries.size(), 2u);
  EXPECT_EQ(profile.nodes[1].adversaries[1].kind,
            sc::AdversaryKind::kRoguePss);

  EXPECT_EQ(sc::make_adversary_profile("none").adversaries_for(4), nullptr);
  ASSERT_NE(profile.adversaries_for(4), nullptr);
  EXPECT_EQ(profile.adversaries_for(4)->size(), 1u);
  EXPECT_EQ(profile.adversaries_for(5), nullptr);
}

TEST(AdversaryProfile, MalformedJsonAndBadFieldsThrow) {
  // Parse errors carry the byte offset (fault-profile convention).
  try {
    sc::make_adversary_profile(R"({"name":"x","nodes":[)");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
  EXPECT_THROW(sc::make_adversary_profile(
                   R"({"nodes":[{"index":0,"adversaries":[{"kind":"death-ray"}]}]})"),
               std::invalid_argument);

  // validate() names the offending field.
  sc::AdversaryProfile profile;
  profile.nodes.push_back(
      {0, {sc::AdversarySpec{sc::AdversaryKind::kSpuriousCw, 100.0}}});
  try {
    profile.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("eirp_dbm"), std::string::npos);
  }
  profile.nodes.front().adversaries.front() =
      sc::AdversarySpec{sc::AdversaryKind::kSpuriousCw,
                        std::numeric_limits<double>::quiet_NaN(), 0.0, 360.0};
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile.nodes.front().adversaries.clear();
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(AdversaryProfile, SourcesAreSeededAndPerNode) {
  RxFixture fix;
  const auto a = sc::make_adversary_profile("jammer");
  const auto b = sc::make_adversary_profile("jammer");
  EXPECT_TRUE(a.sources_for(0).empty());  // unscripted node: no sources
  const auto sa = a.sources_for(3);
  const auto sb = b.sources_for(3);
  ASSERT_EQ(sa.size(), 1u);
  ASSERT_EQ(sb.size(), 1u);

  // Same profile, same node: bit-identical waveforms from two separately
  // constructed profile objects (worker-thread independence).
  const auto ca = render_all(sa, ch_center(22), 8e6, 8192, fix.rx);
  const auto cb = render_all(sb, ch_center(22), 8e6, 8192, fix.rx);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ASSERT_EQ(ca[i].real(), cb[i].real()) << i;
    ASSERT_EQ(ca[i].imag(), cb[i].imag()) << i;
  }
  EXPECT_FALSE(is_silent(ca));

  // A different profile seed re-rolls the jammer's noise waveform.
  const char* json =
      R"({"name":"j","seed":%,"nodes":[{"index":3,"adversaries":[{"kind":"wideband-jammer"}]}]})";
  auto with_seed = [&](const char* seed) {
    std::string doc(json);
    doc.replace(doc.find('%'), 1, seed);
    return sc::make_adversary_profile(doc);
  };
  const auto c7 =
      render_all(with_seed("7").sources_for(3), ch_center(22), 8e6, 8192, fix.rx);
  const auto c8 =
      render_all(with_seed("8").sources_for(3), ch_center(22), 8e6, 8192, fix.rx);
  bool any_diff = false;
  for (std::size_t i = 0; i < c7.size(); ++i)
    any_diff |= c7[i] != c8[i];
  EXPECT_TRUE(any_diff);
}

// --- per-adversary RF signatures --------------------------------------------

TEST(AdversaryRf, SpuriousCwIsACoherentToneInsideChannel33) {
  RxFixture fix;
  const auto sources = sc::make_adversary_profile("cw").sources_for(3);
  ASSERT_EQ(sources.size(), 1u);
  const auto hit = render_all(sources, ch_center(33), 8e6, 16384, fix.rx);
  ASSERT_FALSE(is_silent(hit));
  EXPECT_GT(d::lag_autocorrelation(hit), 0.99);  // bare carrier
  EXPECT_GT(d::mean_power_dbfs(hit), -90.0);
  // Out of band: a capture of channel 22 never hears it.
  EXPECT_TRUE(is_silent(render_all(sources, ch_center(22), 8e6, 16384, fix.rx)));
}

TEST(AdversaryRf, SweptJammerDwellsOnEveryUhfTargetChannel) {
  RxFixture fix;
  const auto sources = sc::make_adversary_profile("swept").sources_for(3);
  ASSERT_EQ(sources.size(), 1u);
  // 5 ms = one full sweep cycle (1 ms dwell x 5 channels) at 8 Msps.
  constexpr std::size_t kCycle = 40000;
  for (int channel : {14, 22, 26, 33, 36}) {
    const auto cap = render_all(sources, ch_center(channel), 8e6, kCycle, fix.rx);
    EXPECT_FALSE(is_silent(cap)) << "channel " << channel;
    // The chirp decorrelates within a dwell: nothing CW-like.
    EXPECT_LT(d::lag_autocorrelation(cap), 0.9) << "channel " << channel;
  }
  // Channel 13 is VHF and deliberately outside the sweep plan.
  EXPECT_TRUE(is_silent(render_all(sources, ch_center(13), 8e6, kCycle, fix.rx)));
}

TEST(AdversaryRf, IntermodPairLandsInChannels14And36Only) {
  RxFixture fix;
  const auto sources = sc::make_adversary_profile("intermod").sources_for(3);
  ASSERT_EQ(sources.size(), 2u);  // 2f1-f2 and 2f2-f1
  for (int channel : {14, 36}) {
    const auto cap = render_all(sources, ch_center(channel), 8e6, 16384, fix.rx);
    EXPECT_FALSE(is_silent(cap)) << "channel " << channel;
    EXPECT_GT(d::lag_autocorrelation(cap), 0.99) << "channel " << channel;
  }
  for (int channel : {13, 22, 26, 33})
    EXPECT_TRUE(
        is_silent(render_all(sources, ch_center(channel), 8e6, 16384, fix.rx)))
        << "channel " << channel;
}

TEST(AdversaryRf, GhostAdsbTransmitsOnlyInThe1090Watchband) {
  RxFixture fix;
  const auto sources = sc::make_adversary_profile("ghost-adsb").sources_for(3);
  ASSERT_EQ(sources.size(), 1u);
  // 100 ms at the decoder rate: a 64-aircraft constellation squitters
  // tens of bursts in this window.
  const auto count =
      static_cast<std::size_t>(0.1 * speccal::adsb::kPpmSampleRateHz);
  const auto cap =
      render_all(sources, 1090e6, speccal::adsb::kPpmSampleRateHz, count, fix.rx);
  EXPECT_FALSE(is_silent(cap));
  // The modulator only renders at its native rate — any other capture
  // configuration hears nothing (that's what the watchlist is for).
  EXPECT_TRUE(is_silent(render_all(sources, 1090e6, 8e6, 16384, fix.rx)));
}

TEST(AdversaryRf, RoguePssCorrelatesAsAStandardsCorrectCell) {
  RxFixture fix;
  const auto sources = sc::make_adversary_profile("rogue-pss").sources_for(3);
  ASSERT_EQ(sources.size(), 1u);
  // 20 ms at the search rate covers four PSS half-frame repetitions (the
  // cell searcher's own capture length).
  const cel::PssSearchConfig search;
  const auto count =
      static_cast<std::size_t>(search.capture_duration_s * cel::kSearchRateHz);
  const auto cap = render_all(sources, 2145e6, cel::kSearchRateHz, count, fix.rx);
  ASSERT_FALSE(is_silent(cap));
  // pss_search reports the raw combined-correlation peak; the searcher's
  // threshold + PCI-consistency check is what declares sync.
  const auto detection = cel::pss_search(cap);
  EXPECT_GE(detection.metric, search.detection_threshold);
  EXPECT_EQ(detection.nid2, 499 % 3);  // PCI 499
  EXPECT_TRUE(is_silent(render_all(sources, 731e6, cel::kSearchRateHz, count, fix.rx)));
}

// --- world seeding (the consensus contract) ---------------------------------

TEST(Testbed, EmitterWaveformsDeriveFromWorldSeedNotNodeSeed) {
  // Two nodes of one fleet must hear the *same* broadcast waveforms — the
  // consensus detector compares their powers, so transmitter state has to
  // derive from the world seed. Node seeds may only vary receiver-local
  // state (thermal noise, dither).
  const auto world = sc::make_world(7);
  const auto site = sc::make_site(sc::Site::kRooftop);
  auto a = sc::make_node(site, world, 5);
  auto b = sc::make_node(site, world, 9);
  const auto capture_ch22 = [](sd::SimulatedSdr& dev) {
    dev.set_gain_mode(sd::GainMode::kManual);
    dev.set_gain_db(20.0);
    EXPECT_TRUE(dev.tune(521e6, 8e6));
    return dev.capture(16384);
  };
  const auto ca = capture_ch22(*a);
  const auto cb = capture_ch22(*b);
  const double signal_dbfs = d::mean_power_dbfs(ca);

  d::Buffer diff(ca.size());
  for (std::size_t i = 0; i < ca.size(); ++i) diff[i] = ca[i] - cb[i];
  // Shared world: the difference is receiver noise, tens of dB under the
  // broadcast. (Seed-split emitters would decorrelate and the difference
  // would carry the full signal power.)
  EXPECT_LT(d::mean_power_dbfs(diff), signal_dbfs - 30.0);

  // Control: a different world seed re-rolls the transmitters.
  const auto world2 = sc::make_world(8);
  auto c = sc::make_node(site, world2, 5);
  const auto cc = capture_ch22(*c);
  for (std::size_t i = 0; i < ca.size(); ++i) diff[i] = ca[i] - cc[i];
  EXPECT_GT(d::mean_power_dbfs(diff), signal_dbfs - 10.0);
}

TEST(Testbed, ExtraSourcesOverloadWithEmptyListIsByteIdentical) {
  const auto world = sc::make_world(7);
  auto plain = sc::make_owned_node(sc::Site::kWindow, world, 5);
  auto extra = sc::make_owned_node(sc::Site::kWindow, world, 5, {});
  for (auto* dev : {plain.get(), extra.get()}) {
    dev->set_gain_mode(sd::GainMode::kManual);
    dev->set_gain_db(20.0);
    ASSERT_TRUE(dev->tune(521e6, 8e6));
  }
  const auto ca = plain->capture(8192);
  const auto cb = extra->capture(8192);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ASSERT_EQ(ca[i].real(), cb[i].real()) << i;
    ASSERT_EQ(ca[i].imag(), cb[i].imag()) << i;
  }
}
