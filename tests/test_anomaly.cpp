// Tests: calib::AnomalyDetector — fleet-consensus RF anomaly detection fed
// by the adversary scenario pack (scenario/adversary.hpp).
//
// Locks the contracts DESIGN.md §16 documents:
//   * seeded scenario regression: on the "mixed" adversary fleet every
//     scripted victim is flagged (100% recall) with the right typed kind,
//     and no clean node is flagged (zero false positives);
//   * golden findings JSON schema (v1) — exact key sets, worst-first order;
//   * arming the anomaly scan on a clean fleet leaves every calibration
//     report byte-identical to an unarmed run (measurement content only),
//     and annotate() is a byte-for-byte no-op on unflagged nodes;
//   * a jammed-but-healthy node is flagged by the anomaly stage while its
//     health score stays at or above the clean floor — RF attacks are not
//     device faults and must not masquerade as them.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "calib/anomaly.hpp"
#include "calib/fleet.hpp"
#include "calib/health.hpp"
#include "json_reader.hpp"
#include "obs/metrics.hpp"
#include "scenario/adversary.hpp"
#include "scenario/testbed.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace obs = speccal::obs;
namespace tj = speccal::testjson;

namespace {

constexpr std::uint64_t kSeed = 13;

// The "mixed" built-in scripts these victims (all indices < 20).
const std::map<std::string, cal::AnomalyKind>& expected_victims() {
  static const std::map<std::string, cal::AnomalyKind> kVictims{
      {"node-2", cal::AnomalyKind::kWidebandJammer},
      {"node-5", cal::AnomalyKind::kWidebandJammer},  // swept types as jammer
      {"node-7", cal::AnomalyKind::kSpuriousEmitter},
      {"node-11", cal::AnomalyKind::kIntermodPair},
      {"node-13", cal::AnomalyKind::kGhostAdsb},
      {"node-17", cal::AnomalyKind::kRoguePss},
  };
  return kVictims;
}

cal::PipelineConfig fleet_config(bool armed) {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  if (armed) {
    cfg.anomaly_scan.enabled = true;
    cfg.anomaly_scan.bands = sc::standard_watchlist();
  }
  return cfg;
}

std::vector<cal::FleetJob> fleet_jobs(const cal::WorldModel& world,
                                      std::size_t count,
                                      const sc::AdversaryProfile& profile) {
  std::vector<cal::FleetJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto site = static_cast<sc::Site>(i % 3);
    cal::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.claims_outdoor = site == sc::Site::kRooftop;
    job.claims.claims_omnidirectional = false;
    job.make_device = [&world, &profile, site, i]() {
      return sc::make_owned_node(site, world, kSeed, profile.sources_for(i));
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void calibrate(cal::NodeRegistry& registry, bool armed,
               const sc::AdversaryProfile& profile) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline = fleet_config(armed);
  run.retry = run.pipeline.retry;
  run.executor.threads = 2;
  cal::FleetCalibrator calibrator(world, run);
  const auto summary = calibrator.run(fleet_jobs(world, 20, profile), registry);
  EXPECT_EQ(summary.failed, 0u);
}

enum class Fleet { kCleanUnarmed, kCleanArmed, kMixed };

/// Three calibrated 20-node registries shared across this file's tests:
/// clean with the scan disarmed, clean with it armed, and armed with the
/// "mixed" adversary profile (every kind, six victims).
cal::NodeRegistry& registry_for(Fleet which) {
  static cal::NodeRegistry clean_unarmed;
  static cal::NodeRegistry clean_armed;
  static cal::NodeRegistry mixed;
  static bool ran = false;
  if (!ran) {
    ran = true;
    const sc::AdversaryProfile no_adversaries;
    calibrate(clean_unarmed, false, no_adversaries);
    calibrate(clean_armed, true, no_adversaries);
    calibrate(mixed, true, sc::make_adversary_profile("mixed"));
  }
  switch (which) {
    case Fleet::kCleanUnarmed: return clean_unarmed;
    case Fleet::kCleanArmed: return clean_armed;
    default: return mixed;
  }
}

std::string report_json(const cal::CalibrationReport& report,
                        bool include_stage_metrics = true) {
  std::ostringstream os;
  report.write_json(os, include_stage_metrics);
  return os.str();
}

}  // namespace

// --- config validation ------------------------------------------------------

TEST(AnomalyConfig, ValidateNamesTheOffendingField) {
  cal::AnomalyConfig cfg;
  EXPECT_NO_THROW(cfg.validate());

  cfg.residual_threshold_db = 0.0;
  try {
    cfg.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("residual_threshold_db"),
              std::string::npos);
  }
  cfg = {};
  cfg.distance_sigma_m = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_band_population = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_neighbor_weight = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.cw_rho_threshold = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.jammer_min_bands = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(cal::AnomalyDetector bad(cfg), std::invalid_argument);
}

// --- seeded scenario regression: the mixed adversary fleet -----------------

TEST(AnomalyDetector, MixedFleetFullRecallZeroFalsePositives) {
  const cal::AnomalyDetector detector;
  const cal::AnomalyReport report = detector.evaluate(registry_for(Fleet::kMixed));

  EXPECT_EQ(report.nodes_evaluated, 20u);
  EXPECT_TRUE(report.geo_weighted);
  EXPECT_DOUBLE_EQ(report.residual_threshold_db,
                   detector.config().residual_threshold_db);

  // 100% recall with the right typed kind per victim...
  const auto& victims = expected_victims();
  for (const auto& [node, kind] : victims) {
    const cal::AnomalyFinding* f = report.find(node);
    ASSERT_NE(f, nullptr) << node << " was not flagged (missed detection)";
    EXPECT_EQ(f->kind, kind) << node;
    EXPECT_GE(f->worst_residual_db, detector.config().residual_threshold_db)
        << node;
  }
  // ...and zero false positives.
  EXPECT_EQ(report.findings.size(), victims.size());
  EXPECT_EQ(report.flagged_nodes, victims.size());
  for (const auto& f : report.findings)
    EXPECT_TRUE(victims.count(f.node_id))
        << f.node_id << " flagged as " << cal::to_string(f.kind)
        << " (false positive)";

  // Per-kind signatures the typing rules key on.
  EXPECT_GT(report.find("node-7")->max_rho, 0.9);   // CW: coherent
  EXPECT_EQ(report.find("node-7")->bands.size(), 1u);
  EXPECT_EQ(report.find("node-11")->bands.size(), 2u);  // intermod pair
  EXPECT_GT(report.find("node-11")->max_rho, 0.9);
  EXPECT_GE(report.find("node-2")->bands.size(), 3u);   // wideband
  EXPECT_GE(report.find("node-5")->bands.size(), 3u);   // swept
  EXPECT_EQ(report.find("node-13")->bands,
            std::vector<std::string>{"watch:adsb-1090"});
  EXPECT_EQ(report.find("node-17")->bands,
            std::vector<std::string>{"watch:cell-2145"});

  // Worst-first ordering (the parked CW carrier towers over everything)
  // with deterministic tiebreaks.
  EXPECT_EQ(report.findings.front().node_id, "node-7");
  for (std::size_t k = 1; k < report.findings.size(); ++k)
    EXPECT_GE(report.findings[k - 1].worst_residual_db,
              report.findings[k].worst_residual_db);

  // find()/flagged() resolve ids; misses return null/false.
  EXPECT_TRUE(report.flagged("node-2"));
  EXPECT_FALSE(report.flagged("node-0"));
  EXPECT_EQ(report.find("nope"), nullptr);
}

TEST(AnomalyDetector, ArmedCleanFleetFlagsNothing) {
  const cal::AnomalyDetector detector;
  const cal::AnomalyReport report =
      detector.evaluate(registry_for(Fleet::kCleanArmed));
  EXPECT_EQ(report.nodes_evaluated, 20u);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.flagged_nodes, 0u);
  EXPECT_GT(report.bands_evaluated, 0u);
}

// --- satellite: RF attacks are not device faults ----------------------------

TEST(AnomalyDetector, JammedNodeStaysHealthyButGetsFlagged) {
  // A jammer raises a node's RF readings, not its fault history: the health
  // monitor must keep every victim at or above the clean floor while the
  // anomaly stage flags it. The two reports answer different questions.
  const cal::HealthMonitor health_monitor;
  const cal::HealthReport health =
      health_monitor.evaluate(registry_for(Fleet::kMixed));
  ASSERT_EQ(health.nodes.size(), 20u);
  EXPECT_EQ(health.unhealthy_count, 0u);
  for (const auto& n : health.nodes) {
    EXPECT_GE(n.score, 85.0) << n.node_id;
    EXPECT_FALSE(n.unhealthy) << n.node_id;
  }

  const cal::AnomalyDetector detector;
  const cal::AnomalyReport report = detector.evaluate(registry_for(Fleet::kMixed));
  for (const auto& [node, kind] : expected_victims())
    EXPECT_TRUE(report.flagged(node)) << node;
}

// --- golden findings JSON schema (v1) ---------------------------------------

TEST(AnomalyDetector, GoldenFindingsJsonSchema) {
  const cal::AnomalyDetector detector;
  const cal::AnomalyReport report = detector.evaluate(registry_for(Fleet::kMixed));
  std::ostringstream os;
  report.write_json(os);
  ASSERT_FALSE(os.str().empty());
  EXPECT_EQ(os.str().back(), '\n');
  const auto doc = tj::parse(os.str());

  std::set<std::string> top_keys;
  for (const auto& [k, v] : doc.object()) top_keys.insert(k);
  const std::set<std::string> expected_top{
      "schema_version",  "residual_threshold_db", "geo_weighted",
      "nodes_evaluated", "bands_evaluated",       "flagged_nodes",
      "findings"};
  EXPECT_EQ(top_keys, expected_top);  // schema lock: exactly these fields
  EXPECT_EQ(doc.at("schema_version").number(), 1.0);
  EXPECT_TRUE(doc.at("geo_weighted").boolean());
  EXPECT_EQ(doc.at("nodes_evaluated").number(), 20.0);
  EXPECT_EQ(doc.at("flagged_nodes").number(), 6.0);

  const auto& findings = doc.at("findings").array();
  ASSERT_EQ(findings.size(), 6u);
  const std::set<std::string> expected_finding{
      "node", "kind", "worst_residual_db", "max_rho", "bands"};
  const std::set<std::string> known_kinds{
      "wideband-jammer", "spurious-emitter", "intermod-pair", "ghost-adsb",
      "rogue-pss"};
  double prev = 1e9;
  for (const auto& f : findings) {
    std::set<std::string> keys;
    for (const auto& [k, v] : f.object()) keys.insert(k);
    EXPECT_EQ(keys, expected_finding);
    EXPECT_TRUE(known_kinds.count(f.at("kind").str())) << f.at("kind").str();
    EXPECT_LE(f.at("worst_residual_db").number(), prev);  // worst-first
    prev = f.at("worst_residual_db").number();
    EXPECT_FALSE(f.at("bands").array().empty());
  }
  EXPECT_EQ(findings.front().at("node").str(), "node-7");
  EXPECT_EQ(findings.front().at("kind").str(), "spurious-emitter");
}

// --- metric publication -----------------------------------------------------

TEST(AnomalyDetector, PublishesFindingsMetrics) {
  const cal::AnomalyDetector detector;
  const cal::AnomalyReport report = detector.evaluate(registry_for(Fleet::kMixed));
  obs::Registry reg;  // isolated registry: exact values, no cross-test noise
  detector.publish(report, reg);

  EXPECT_DOUBLE_EQ(reg.counter("speccal_anomaly_findings_total").value(), 6.0);
  EXPECT_DOUBLE_EQ(reg.gauge("speccal_anomaly_flagged_nodes").value(), 6.0);
  EXPECT_DOUBLE_EQ(reg.gauge("speccal_anomaly_bands_evaluated").value(),
                   static_cast<double>(report.bands_evaluated));
  const auto kind_gauge = [&reg](const char* kind) {
    return reg.gauge("speccal_anomaly_findings", {{"kind", kind}}).value();
  };
  EXPECT_DOUBLE_EQ(kind_gauge("wideband-jammer"), 2.0);
  EXPECT_DOUBLE_EQ(kind_gauge("spurious-emitter"), 1.0);
  EXPECT_DOUBLE_EQ(kind_gauge("intermod-pair"), 1.0);
  EXPECT_DOUBLE_EQ(kind_gauge("ghost-adsb"), 1.0);
  EXPECT_DOUBLE_EQ(kind_gauge("rogue-pss"), 1.0);
}

// --- annotate + the clean-run bitwise guarantee -----------------------------

TEST(AnomalyDetector, ArmedCleanRunReportsStayBitwise) {
  // Arming the scan on a clean fleet must not change a byte of any report's
  // measurement content: the scan stage runs after every calibration
  // capture and its result is never serialized. (Stage metrics are wall
  // clock and are excluded, as in the decode-farm round-trip gate.)
  std::map<std::string, std::string> unarmed;
  registry_for(Fleet::kCleanUnarmed)
      .for_each_report([&](const cal::CalibrationReport& r) {
        unarmed[r.claims.node_id] = report_json(r, false);
      });
  std::size_t compared = 0;
  registry_for(Fleet::kCleanArmed)
      .for_each_report([&](const cal::CalibrationReport& r) {
        const auto it = unarmed.find(r.claims.node_id);
        ASSERT_NE(it, unarmed.end());
        EXPECT_EQ(report_json(r, false), it->second) << r.claims.node_id;
        ++compared;
      });
  EXPECT_EQ(compared, 20u);
}

TEST(AnomalyDetector, AnnotateTouchesOnlyFlaggedNodes) {
  // Fresh registries (the shared ones must stay unannotated for the other
  // tests): one clean armed, one mixed.
  const cal::AnomalyDetector detector;

  cal::NodeRegistry clean;
  calibrate(clean, true, sc::AdversaryProfile{});
  std::vector<std::string> before;
  clean.for_each_report([&](const cal::CalibrationReport& r) {
    before.push_back(report_json(r));
  });
  detector.annotate(clean, detector.evaluate(clean));
  std::size_t i = 0;
  clean.for_each_report([&](const cal::CalibrationReport& r) {
    EXPECT_EQ(report_json(r), before[i++]) << r.claims.node_id;
  });

  cal::NodeRegistry mixed;
  calibrate(mixed, true, sc::make_adversary_profile("mixed"));
  const cal::AnomalyReport report = detector.evaluate(mixed);
  detector.annotate(mixed, report);
  mixed.for_each_report([&](const cal::CalibrationReport& r) {
    std::size_t anomaly_findings = 0;
    for (const auto& f : r.trust.findings)
      if (f.severity == cal::Severity::kWarning &&
          f.description.find("anomaly:") != std::string::npos)
        ++anomaly_findings;
    EXPECT_EQ(anomaly_findings, report.flagged(r.claims.node_id) ? 1u : 0u)
        << r.claims.node_id;
  });
}
