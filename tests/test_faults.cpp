// Deterministic chaos suite: the fault-injecting SDR layer and the
// calibration engine's retry/backoff/deadline/quarantine machinery.
// Runs under ASan/UBSan via ctest and under TSan in the dedicated CI job.
//
// Determinism contract under test (DESIGN.md §11): same seed + same fault
// schedule => the same faults fire at the same op indices, the same stages
// retry/quarantine, and untouched nodes produce byte-identical reports.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "calib/fleet.hpp"
#include "calib/retry.hpp"
#include "json_reader.hpp"
#include "obs/metrics.hpp"
#include "scenario/testbed.hpp"
#include "sdr/fault.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace sdr = speccal::sdr;
namespace obs = speccal::obs;
namespace dsp = speccal::dsp;

namespace {

constexpr std::uint64_t kSeed = 77;

/// Pipeline config with the cheap link-budget survey plus the chaos-grade
/// retry policy (4 attempts, quarantine on).
cal::PipelineConfig chaos_config() {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  cfg.retry.max_attempts = 4;
  cfg.retry.quarantine = true;
  return cfg;
}

/// Minimal stub: capture() derives every sample from the running call
/// index, so two identically-constructed stubs replay the same stream.
/// Deliberately does NOT override capture_into — it exercises the default
/// fallback-to-capture() adapter in sdr::Device.
class StubDevice : public sdr::Device {
 public:
  [[nodiscard]] sdr::DeviceInfo info() const override {
    sdr::DeviceInfo info;
    info.driver = "stub";
    return info;
  }
  [[nodiscard]] speccal::geo::Geodetic position() const override {
    return sc::testbed_origin();
  }
  bool tune(double f, double sr) override {
    freq_ = f;
    rate_ = sr;
    return true;
  }
  void set_gain_mode(sdr::GainMode) override {}
  void set_gain_db(double g) override { gain_db_ = g; }
  [[nodiscard]] double gain_db() const override { return gain_db_; }
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override {
    dsp::Buffer buf(count);
    for (std::size_t k = 0; k < count; ++k)
      buf[k] = dsp::Sample(static_cast<float>(calls_) + 0.25f,
                           -static_cast<float>(k));
    ++calls_;
    stream_time_s_ += rate_ > 0.0 ? static_cast<double>(count) / rate_ : 0.0;
    return buf;
  }
  [[nodiscard]] double stream_time_s() const override { return stream_time_s_; }
  [[nodiscard]] double center_freq_hz() const override { return freq_; }
  [[nodiscard]] double sample_rate_hz() const override { return rate_; }

  [[nodiscard]] int capture_calls() const noexcept { return calls_; }

 private:
  double freq_ = 100e6;
  double rate_ = 2e6;
  double gain_db_ = 0.0;
  double stream_time_s_ = 0.0;
  int calls_ = 0;
};

/// A StubDevice that throws on its first `fail_count` captures — drives
/// RetryRunner directly without a full pipeline.
class FlakyStubDevice final : public StubDevice {
 public:
  explicit FlakyStubDevice(int fail_count) : fail_count_(fail_count) {}
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override {
    if (attempts_++ < fail_count_) throw std::runtime_error("usb glitch");
    return StubDevice::capture(count);
  }

 private:
  int fail_count_;
  int attempts_ = 0;
};

std::vector<cal::FleetJob> fleet_jobs(const cal::WorldModel& world,
                                      std::size_t count,
                                      const sdr::FaultProfile& profile) {
  std::vector<cal::FleetJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto site = static_cast<sc::Site>(i % 3);
    cal::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.claims_outdoor = site == sc::Site::kRooftop;
    job.claims.claims_omnidirectional = false;
    job.make_device = [&world, &profile, site, i]() {
      return profile.wrap(sc::make_owned_node(site, world, kSeed), i);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string report_json(const cal::CalibrationReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

/// Report JSON with the trailing "stage_metrics" object (wall-clock stage
/// timings — the one legitimately nondeterministic section) removed, for
/// bitwise determinism comparisons of the measurement payload.
std::string report_json_sans_timing(const cal::CalibrationReport& report) {
  std::string json = report_json(report);
  const auto pos = json.find(",\"stage_metrics\"");
  if (pos != std::string::npos) json = json.substr(0, pos) + "}";
  return json;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

}  // namespace

// --- Device::capture_into default adapter (device.hpp) ----------------------

TEST(CaptureIntoAdapter, DefaultFallbackMatchesCaptureBitwise) {
  StubDevice a;
  StubDevice b;
  const dsp::Buffer expect = a.capture(256);
  dsp::Buffer out(256);
  b.capture_into(out);  // default adapter: capture() + copy
  ASSERT_EQ(expect.size(), out.size());
  for (std::size_t k = 0; k < out.size(); ++k) EXPECT_EQ(expect[k], out[k]);
  EXPECT_EQ(a.capture_calls(), b.capture_calls());
  EXPECT_DOUBLE_EQ(a.stream_time_s(), b.stream_time_s());
}

TEST(CaptureIntoAdapter, EmptySpanIsSafeNoOp) {
  StubDevice dev;
  dsp::Buffer out;
  dev.capture_into(std::span<dsp::Sample>(out.data(), 0));
  // The adapter still routes through capture(0): one call, zero samples,
  // zero stream-time advance, no write.
  EXPECT_EQ(dev.capture_calls(), 1);
  EXPECT_DOUBLE_EQ(dev.stream_time_s(), 0.0);
}

TEST(CaptureIntoAdapter, RepeatedRoundTripsStayAligned) {
  // Property-style: for several sizes, twin stubs driven through the two
  // paths never diverge.
  StubDevice a;
  StubDevice b;
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    const dsp::Buffer expect = a.capture(n);
    dsp::Buffer out(n);
    b.capture_into(out);
    ASSERT_EQ(expect.size(), out.size());
    for (std::size_t k = 0; k < n; ++k) ASSERT_EQ(expect[k], out[k]);
  }
}

// --- FaultInjectingDevice ---------------------------------------------------

TEST(FaultDevice, TransparentWhenScheduleIsEmpty) {
  const auto world = sc::make_world(kSeed);
  auto raw = sc::make_owned_node(sc::Site::kRooftop, world, kSeed);
  sdr::FaultInjectingDevice wrapped(
      sc::make_owned_node(sc::Site::kRooftop, world, kSeed), {}, 123);

  EXPECT_EQ(raw->info().driver, wrapped.info().driver);
  EXPECT_EQ(raw->tune(545e6, 2.4e6), wrapped.tune(545e6, 2.4e6));
  raw->set_gain_db(21.0);
  wrapped.set_gain_db(21.0);
  EXPECT_DOUBLE_EQ(raw->gain_db(), wrapped.gain_db());
  EXPECT_NE(wrapped.sim_control(), nullptr);

  for (int round = 0; round < 3; ++round) {
    const dsp::Buffer a = raw->capture(2048);
    const dsp::Buffer b = wrapped.capture(2048);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) ASSERT_EQ(a[k], b[k]);
  }
  dsp::Buffer a_into(512);
  dsp::Buffer b_into(512);
  raw->capture_into(a_into);
  wrapped.capture_into(b_into);
  for (std::size_t k = 0; k < a_into.size(); ++k)
    ASSERT_EQ(a_into[k], b_into[k]);

  EXPECT_DOUBLE_EQ(raw->stream_time_s(), wrapped.stream_time_s());
  EXPECT_DOUBLE_EQ(raw->center_freq_hz(), wrapped.center_freq_hz());
  EXPECT_EQ(wrapped.injected_count(), 0u);
}

TEST(FaultDevice, InjectsScriptedCaptureFaults) {
  std::vector<sdr::FaultSpec> schedule{
      {sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, 1, 0.0, 1.0},
      {sdr::FaultOp::kCapture, sdr::FaultKind::kShortRead, 1, 1, 0.5, 1.0},
      {sdr::FaultOp::kCapture, sdr::FaultKind::kNanBurst, 2, 1, 0.0, 1.0},
      {sdr::FaultOp::kCapture, sdr::FaultKind::kSaturate, 3, 1, 0.0, 1.0},
  };
  sdr::FaultInjectingDevice dev(std::make_unique<StubDevice>(),
                                std::move(schedule), 1);

  EXPECT_THROW((void)dev.capture(128), std::runtime_error);  // op 0
  const dsp::Buffer short_read = dev.capture(128);           // op 1
  EXPECT_EQ(short_read.size(), 64u);
  const dsp::Buffer nans = dev.capture(128);  // op 2
  ASSERT_EQ(nans.size(), 128u);
  for (const auto& s : nans) {
    EXPECT_TRUE(std::isnan(s.real()));
    EXPECT_TRUE(std::isnan(s.imag()));
  }
  const dsp::Buffer sat = dev.capture(128);  // op 3
  for (const auto& s : sat) EXPECT_EQ(s, dsp::Sample(1.0f, 1.0f));
  const dsp::Buffer clean = dev.capture(128);  // op 4: schedule exhausted
  EXPECT_FALSE(std::isnan(clean.front().real()));
  EXPECT_EQ(dev.injected_count(), 4u);
  EXPECT_EQ(dev.capture_ops(), 5u);
}

TEST(FaultDevice, ShortReadOnCaptureIntoLeavesTailStale) {
  std::vector<sdr::FaultSpec> schedule{
      {sdr::FaultOp::kCapture, sdr::FaultKind::kShortRead, 0, 1, 0.25, 1.0}};
  sdr::FaultInjectingDevice dev(std::make_unique<StubDevice>(),
                                std::move(schedule), 1);
  const dsp::Sample sentinel(-42.0f, 42.0f);
  dsp::Buffer out(100, sentinel);
  dev.capture_into(out);
  // Head (25%) freshly written, tail still holds the caller's stale data.
  EXPECT_NE(out[0], sentinel);
  for (std::size_t k = 25; k < out.size(); ++k) ASSERT_EQ(out[k], sentinel);
}

TEST(FaultDevice, TuneRefusalAndSilentGainDrift) {
  std::vector<sdr::FaultSpec> schedule{
      {sdr::FaultOp::kTune, sdr::FaultKind::kTuneRefuse, 1, 2, 0.0, 1.0},
      {sdr::FaultOp::kGain, sdr::FaultKind::kGainDriftDb, 0, -1, 6.0, 1.0},
  };
  sdr::FaultInjectingDevice dev(std::make_unique<StubDevice>(),
                                std::move(schedule), 1);

  EXPECT_TRUE(dev.tune(100e6, 2e6));   // op 0: fine
  EXPECT_FALSE(dev.tune(200e6, 2e6));  // ops 1-2: PLL refuses
  EXPECT_FALSE(dev.tune(200e6, 2e6));
  EXPECT_TRUE(dev.tune(200e6, 2e6));   // op 3: recovered

  dev.set_gain_db(30.0);
  EXPECT_DOUBLE_EQ(dev.gain_db(), 30.0);          // the lie
  EXPECT_DOUBLE_EQ(dev.inner().gain_db(), 36.0);  // the truth
}

TEST(FaultDevice, ProbabilisticFaultsAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    std::vector<sdr::FaultSpec> schedule{
        {sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, -1, 0.0, 0.5}};
    sdr::FaultInjectingDevice dev(std::make_unique<StubDevice>(), schedule,
                                  seed);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        (void)dev.capture(16);
        pattern.push_back('.');
      } catch (const std::runtime_error&) {
        pattern.push_back('X');
      }
    }
    return pattern;
  };
  const std::string a = run(7);
  EXPECT_EQ(a, run(7));            // same seed, same faults
  EXPECT_NE(a, std::string(32, '.'));
  EXPECT_NE(a, std::string(32, 'X'));
}

// --- Fault profiles ---------------------------------------------------------

TEST(FaultProfile, BuiltinsAndJsonRoundTrip) {
  const auto flaky = sdr::make_fault_profile("flaky20");
  EXPECT_EQ(flaky.name, "flaky20");
  EXPECT_EQ(flaky.expected_quarantined_nodes, 1u);
  EXPECT_NE(flaky.faults_for(5), nullptr);
  EXPECT_EQ(flaky.faults_for(0), nullptr);

  const auto custom = sdr::make_fault_profile(
      R"({"name":"mini","seed":9,"retry_max_attempts":3,
          "expected_quarantined_nodes":1,
          "nodes":[{"index":2,"faults":[
            {"op":"capture","kind":"throw","first":0,"count":-1},
            {"op":"tune","kind":"tune_refuse","first":1,"count":2,
             "probability":0.5}]}]})");
  EXPECT_EQ(custom.name, "mini");
  EXPECT_EQ(custom.seed, 9u);
  EXPECT_EQ(custom.retry_max_attempts, 3);
  ASSERT_NE(custom.faults_for(2), nullptr);
  ASSERT_EQ(custom.faults_for(2)->size(), 2u);
  EXPECT_EQ(custom.faults_for(2)->at(0).count, -1);
  EXPECT_EQ(custom.faults_for(2)->at(1).kind, sdr::FaultKind::kTuneRefuse);

  EXPECT_THROW((void)sdr::make_fault_profile("bogus"), std::invalid_argument);
  EXPECT_THROW((void)sdr::make_fault_profile("{\"nope\":1}"),
               std::invalid_argument);
}

// --- Retry / backoff / deadline / quarantine --------------------------------

TEST(Retry, PassthroughPolicyPropagatesLikeSeedBehaviour) {
  // Default policy: the exception flies, the fleet engine turns it into an
  // abort — exactly the pre-retry failure model.
  const auto world = sc::make_world(kSeed);
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  cal::CalibrationPipeline pipeline(world, cfg);
  sdr::FaultInjectingDevice dev(
      sc::make_owned_node(sc::Site::kRooftop, world, kSeed),
      {{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, -1, 0.0, 1.0}}, 1);
  cal::NodeClaims claims;
  claims.node_id = "passthrough";
  EXPECT_THROW((void)pipeline.calibrate(dev, claims), std::runtime_error);
}

TEST(Retry, FlakyCaptureRecoversAfterRetries) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, chaos_config());
  // First two captures throw; the TV sweep (the first capturing stage under
  // link-budget fidelity) needs exactly 3 attempts.
  sdr::FaultInjectingDevice dev(
      sc::make_owned_node(sc::Site::kRooftop, world, kSeed),
      {{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, 2, 0.0, 1.0}}, 1);
  cal::NodeClaims claims;
  claims.node_id = "flaky";
  claims.claims_outdoor = true;

  const std::uint64_t retries_before = counter_value("speccal_retry_attempts_total");
  const std::uint64_t recovered_before =
      counter_value("speccal_retry_recovered_total");
  const cal::CalibrationReport report = pipeline.calibrate(dev, claims);

  EXPECT_FALSE(report.aborted());
  EXPECT_FALSE(report.quarantined());
  ASSERT_EQ(report.fault_records.size(), 1u);
  const cal::FaultRecord& fr = report.fault_records.front();
  EXPECT_EQ(fr.stage, cal::Stage::kTvSweep);
  EXPECT_EQ(fr.outcome, cal::FaultOutcome::kRecovered);
  EXPECT_EQ(fr.attempts, 3);
  EXPECT_FALSE(fr.degraded);
  EXPECT_GT(fr.backoff_total_s, 0.0);
  EXPECT_NE(fr.last_error.find("injected fault"), std::string::npos);
  EXPECT_GE(counter_value("speccal_retry_attempts_total"), retries_before + 2);
  EXPECT_GE(counter_value("speccal_retry_recovered_total"), recovered_before + 1);
  EXPECT_GT(report.trust.score, 0.0);  // recovered nodes keep their trust
}

TEST(Retry, BackoffJitterIsDeterministicPerNode) {
  cal::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.quarantine = true;

  auto run_node = [&](const std::string& node_id) {
    FlakyStubDevice dev(2);
    cal::RetryRunner runner(policy, node_id, &dev, nullptr);
    std::vector<cal::FaultRecord> records;
    const bool ok = runner.run(
        cal::Stage::kTvSweep, records, [] {}, [&] { (void)dev.capture(8); });
    EXPECT_TRUE(ok);
    EXPECT_EQ(records.size(), 1u);
    return records.front().backoff_total_s;
  };

  const double a1 = run_node("node-a");
  const double a2 = run_node("node-a");
  const double b = run_node("node-b");
  EXPECT_DOUBLE_EQ(a1, a2);  // same node id => identical jitter stream
  EXPECT_NE(a1, b);          // different node => independent stream
}

TEST(Retry, DeadNodeIsQuarantinedNotAborted) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, chaos_config());
  sdr::FaultInjectingDevice dev(
      sc::make_owned_node(sc::Site::kWindow, world, kSeed),
      {{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, -1, 0.0, 1.0}}, 1);
  cal::NodeClaims claims;
  claims.node_id = "dead";

  const std::uint64_t quarantined_before =
      counter_value("speccal_fault_quarantined_stages_total");
  const cal::CalibrationReport report = pipeline.calibrate(dev, claims);

  EXPECT_FALSE(report.aborted());  // no abort: the run completed, degraded
  EXPECT_TRUE(report.quarantined());
  ASSERT_FALSE(report.fault_records.empty());
  for (const auto& fr : report.fault_records) {
    EXPECT_EQ(fr.outcome, cal::FaultOutcome::kQuarantined);
    EXPECT_EQ(fr.attempts, 4);
    EXPECT_TRUE(fr.degraded);
  }
  // Quarantined stages left no partial outputs behind.
  EXPECT_TRUE(report.tv_readings.empty());
  // Trust collapsed and carries the quarantine violations.
  bool saw_quarantine_finding = false;
  for (const auto& f : report.trust.findings)
    if (f.severity == cal::Severity::kViolation &&
        f.description.find("quarantined") != std::string::npos)
      saw_quarantine_finding = true;
  EXPECT_TRUE(saw_quarantine_finding);
  EXPECT_GE(counter_value("speccal_fault_quarantined_stages_total"),
            quarantined_before + 1);
}

TEST(Retry, DeadlineExpiryOnStallingCapture) {
  const auto world = sc::make_world(kSeed);
  cal::PipelineConfig cfg = chaos_config();
  cfg.retry.stage_deadline_s = 0.01;  // 10 ms budget per stage
  cal::CalibrationPipeline pipeline(world, cfg);
  // Every capture stalls 50 ms then times out: the first failed attempt
  // already blows the deadline, so the stage gives up without retrying.
  sdr::FaultInjectingDevice dev(
      sc::make_owned_node(sc::Site::kRooftop, world, kSeed),
      {{sdr::FaultOp::kCapture, sdr::FaultKind::kStall, 0, -1, 0.05, 1.0}}, 1);
  cal::NodeClaims claims;
  claims.node_id = "staller";

  const cal::CalibrationReport report = pipeline.calibrate(dev, claims);
  EXPECT_FALSE(report.aborted());
  EXPECT_TRUE(report.quarantined());
  ASSERT_FALSE(report.fault_records.empty());
  for (const auto& fr : report.fault_records) {
    EXPECT_EQ(fr.outcome, cal::FaultOutcome::kDeadlineExpired);
    EXPECT_EQ(fr.attempts, 1);  // deadline beat the retry budget
  }
  EXPECT_GT(dev.stalled_s(), 0.0);
}

TEST(Retry, NanAndSaturatedBuffersNeverReachClassifierOutput) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, chaos_config());

  for (const sdr::FaultKind kind :
       {sdr::FaultKind::kNanBurst, sdr::FaultKind::kSaturate}) {
    sdr::FaultInjectingDevice dev(
        sc::make_owned_node(sc::Site::kRooftop, world, kSeed),
        {{sdr::FaultOp::kCapture, kind, 0, -1, 0.0, 1.0}}, 1);
    cal::NodeClaims claims;
    claims.node_id = kind == sdr::FaultKind::kNanBurst ? "nan" : "saturated";
    const cal::CalibrationReport report = pipeline.calibrate(dev, claims);

    // Corrupt buffers degrade the data; they must never poison the outputs.
    EXPECT_FALSE(report.aborted());
    EXPECT_TRUE(std::isfinite(report.trust.score));
    EXPECT_TRUE(std::isfinite(report.classification.confidence));
    EXPECT_TRUE(std::isfinite(report.frequency_response.mean_attenuation_db));
    for (const auto& band : report.frequency_response.bands)
      EXPECT_TRUE(std::isfinite(band.mean_attenuation_db));
    for (const auto& reading : report.tv_readings)
      EXPECT_TRUE(std::isfinite(reading.power_dbfs));
    // And the JSON export stays strictly parseable (writer emits no NaN).
    EXPECT_NO_THROW((void)speccal::testjson::parse(report_json(report)));
  }
}

// --- Fleet-level chaos ------------------------------------------------------

TEST(ChaosFleet, DeadNodeQuarantinedWhileHealthyNodesStayBitwiseIdentical) {
  const auto world = sc::make_world(kSeed);
  constexpr std::size_t kFleet = 20;
  constexpr std::size_t kDeadIndex = 5;

  sdr::FaultProfile no_faults;  // empty: every node gets the bare device
  sdr::FaultProfile one_dead;
  one_dead.name = "one-dead";
  one_dead.nodes.push_back(
      {kDeadIndex,
       {{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, -1, 0.0, 1.0}}});

  auto run_fleet = [&](const sdr::FaultProfile& profile) {
    cal::RunConfig run;
    run.pipeline = chaos_config();
    run.executor.threads = 4;
    cal::FleetCalibrator calibrator(world, run);
    auto registry = std::make_unique<cal::NodeRegistry>();
    const auto summary =
        calibrator.run(fleet_jobs(world, kFleet, profile), *registry);
    return std::make_pair(summary, std::move(registry));
  };

  const auto [clean_summary, clean_registry] = run_fleet(no_faults);
  const auto [chaos_summary, chaos_registry] = run_fleet(one_dead);

  EXPECT_EQ(clean_summary.failed, 0u);
  EXPECT_EQ(clean_summary.faults.quarantined, 0u);
  EXPECT_EQ(chaos_summary.calibrated, kFleet);
  EXPECT_EQ(chaos_summary.failed, 0u);       // quarantine, not abort
  EXPECT_EQ(chaos_summary.faults.quarantined, 1u);  // exactly the dead node

  for (std::size_t i = 0; i < kFleet; ++i) {
    const std::string id = "node-" + std::to_string(i);
    const auto* clean = clean_registry->find(id);
    const auto* chaos = chaos_registry->find(id);
    ASSERT_NE(clean, nullptr);
    ASSERT_NE(chaos, nullptr);
    if (i == kDeadIndex) {
      EXPECT_TRUE(chaos->quarantined());
      EXPECT_LT(chaos->trust.score, clean->trust.score);
      continue;
    }
    // The 19 untouched nodes: reports byte-identical to the fault-free run
    // (stage wall-times aside — those are real clock readings).
    EXPECT_EQ(report_json_sans_timing(*clean), report_json_sans_timing(*chaos))
        << id;
  }
}

TEST(ChaosFleet, Flaky20ProfileRecoversAndQuarantinesAsScripted) {
  const auto world = sc::make_world(kSeed);
  const auto profile = sdr::make_fault_profile("flaky20");

  cal::RunConfig run;
  run.pipeline = chaos_config();
  run.retry = run.pipeline.retry;
  run.retry.max_attempts = profile.retry_max_attempts;
  run.retry.initial_backoff_s = profile.initial_backoff_s;
  run.executor.threads = 4;
  cal::FleetCalibrator calibrator(world, run);
  cal::NodeRegistry registry;
  const std::uint64_t retries_before = counter_value("speccal_retry_attempts_total");
  const auto summary = calibrator.run(fleet_jobs(world, 20, profile), registry);

  EXPECT_EQ(summary.calibrated, 20u);
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_EQ(summary.faults.quarantined, profile.expected_quarantined_nodes);
  EXPECT_EQ(summary.faults.recovered, 3u);  // nodes 2, 7, 12 recover on retry
  EXPECT_GE(counter_value("speccal_retry_attempts_total"), retries_before + 6);

  const auto* dead = registry.find("node-5");
  ASSERT_NE(dead, nullptr);
  EXPECT_TRUE(dead->quarantined());
  const auto* flaky = registry.find("node-2");
  ASSERT_NE(flaky, nullptr);
  EXPECT_FALSE(flaky->quarantined());
  ASSERT_FALSE(flaky->fault_records.empty());
  EXPECT_EQ(flaky->fault_records.front().outcome, cal::FaultOutcome::kRecovered);
}

// --- Golden FaultRecord JSON schema -----------------------------------------

TEST(GoldenReport, FaultRecordSchemaRoundTripsThroughJson) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, chaos_config());
  sdr::FaultInjectingDevice dev(
      sc::make_owned_node(sc::Site::kIndoor, world, kSeed),
      {{sdr::FaultOp::kCapture, sdr::FaultKind::kThrow, 0, -1, 0.0, 1.0}}, 1);
  cal::NodeClaims claims;
  claims.node_id = "golden-faulty";
  const cal::CalibrationReport report = pipeline.calibrate(dev, claims);
  ASSERT_TRUE(report.quarantined());

  const auto doc = speccal::testjson::parse(report_json(report));
  EXPECT_EQ(doc.at("node_id").str(), "golden-faulty");
  EXPECT_FALSE(doc.at("aborted").boolean());
  EXPECT_TRUE(doc.at("quarantined").boolean());

  ASSERT_TRUE(doc.has("fault_records"));
  const auto& records = doc.at("fault_records").array();
  ASSERT_FALSE(records.empty());
  const std::set<std::string> expected_keys{"stage",    "attempts",
                                            "outcome",  "degraded",
                                            "backoff_total_s", "error"};
  const std::set<std::string> known_stages{"survey",   "fov",  "cell_scan",
                                           "tv_sweep", "fuse", "lo_calibration"};
  for (const auto& rec : records) {
    std::set<std::string> keys;
    for (const auto& [k, v] : rec.object()) keys.insert(k);
    EXPECT_EQ(keys, expected_keys);  // schema lock: exactly these fields
    EXPECT_TRUE(known_stages.count(rec.at("stage").str())) << rec.at("stage").str();
    EXPECT_GE(rec.at("attempts").number(), 1.0);
    EXPECT_EQ(rec.at("outcome").str(), "quarantined");
    EXPECT_TRUE(rec.at("degraded").boolean());
    EXPECT_GE(rec.at("backoff_total_s").number(), 0.0);
    EXPECT_NE(rec.at("error").str().find("injected fault"), std::string::npos);
  }

  // A clean report advertises the same top-level schema with no records.
  auto clean_device = sc::make_owned_node(sc::Site::kIndoor, world, kSeed);
  cal::NodeClaims clean_claims;
  clean_claims.node_id = "golden-clean";
  const auto clean_doc = speccal::testjson::parse(
      report_json(pipeline.calibrate(*clean_device, clean_claims)));
  EXPECT_FALSE(clean_doc.at("quarantined").boolean());
  EXPECT_FALSE(clean_doc.has("fault_records"));
}
