// Tests: the observability layer — metrics registry (counters, gauges,
// histograms, exposition formats), trace sessions/spans and their Chrome
// trace_event export, StageTimer's exception-safety contract, and the
// fleet-level wiring. The concurrency cases are built to run clean under
// ThreadSanitizer (the CI TSan job builds this binary).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "calib/fleet.hpp"
#include "calib/metrics.hpp"
#include "dsp/plan.hpp"
#include "json_reader.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "scenario/testbed.hpp"

namespace obs = speccal::obs;
namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace tj = speccal::testjson;

// ------------------------------------------------------------- registry ----

TEST(Registry, GetOrCreateReturnsStableHandles) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("speccal_test_events_total");
  obs::Counter& b = reg.counter("speccal_test_events_total");
  EXPECT_EQ(&a, &b);  // one series per name, shared by all call sites
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry reg;
  (void)reg.counter("speccal_test_thing_total");
  EXPECT_THROW((void)reg.gauge("speccal_test_thing_total"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("speccal_test_thing_total",
                                   obs::default_duration_bounds_ms()),
               std::invalid_argument);
}

TEST(Registry, RejectsInvalidNames) {
  obs::Registry reg;
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("dash-not-allowed"), std::invalid_argument);
  (void)reg.counter("ok_name:with_colon_09");
}

TEST(Registry, CounterConcurrencyExactTotal) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("speccal_test_hammer_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);  // no lost updates, ever
}

TEST(Registry, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("speccal_test_level");
  g.set(4.0);
  g.add(1.5);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Registry, KillSwitchSilencesFastPath) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("speccal_test_gated_total");
  c.add();
  obs::set_metrics_enabled(false);
  c.add(100);
  obs::set_metrics_enabled(true);
  c.add();
  EXPECT_EQ(c.value(), 2u);
}

// ------------------------------------------------------------ histogram ----

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  obs::Registry reg;
  const double bounds[] = {1.0, 2.0, 5.0};
  obs::Histogram& h = reg.histogram("speccal_test_latency_ms", bounds);
  // v lands in the first bucket with v <= bound: exact bounds stay low.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (le)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1 (le)
  h.observe(5.0);   // bucket 2 (le)
  h.observe(5.001); // +Inf overflow
  h.observe(-3.0);  // below every bound -> bucket 0
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 - 3.0, 1e-9);
}

TEST(Histogram, RejectsBadBounds) {
  obs::Registry reg;
  EXPECT_THROW((void)reg.histogram("speccal_test_empty_ms", {}),
               std::invalid_argument);
  const double unsorted[] = {2.0, 1.0};
  EXPECT_THROW((void)reg.histogram("speccal_test_unsorted_ms", unsorted),
               std::invalid_argument);
  const double repeated[] = {1.0, 1.0};
  EXPECT_THROW((void)reg.histogram("speccal_test_repeated_ms", repeated),
               std::invalid_argument);
}

TEST(Histogram, ConcurrentObserveKeepsTotals) {
  obs::Registry reg;
  const double bounds[] = {10.0, 20.0};
  obs::Histogram& h = reg.histogram("speccal_test_conc_ms", bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(t * 10));  // 0,10 -> b0; 20 -> b1; 30 -> inf
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_count(0), 2u * kPerThread);
  EXPECT_EQ(h.bucket_count(1), 1u * kPerThread);
  EXPECT_EQ(h.bucket_count(2), 1u * kPerThread);
}

// ----------------------------------------------------------- exposition ----

TEST(Exposition, JsonParsesAndCarriesCumulativeBuckets) {
  obs::Registry reg;
  reg.counter("speccal_test_a_total").add(7);
  reg.gauge("speccal_test_b").set(-2.5);
  const double bounds[] = {1.0, 10.0};
  obs::Histogram& h = reg.histogram("speccal_test_c_ms", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  std::ostringstream os;
  reg.write_json(os);
  const tj::Value doc = tj::parse(os.str());
  const auto& metrics = doc.at("metrics").array();
  ASSERT_EQ(metrics.size(), 3u);

  // std::map keeps exposition name-ordered: a, b, c.
  EXPECT_EQ(metrics[0].at("name").str(), "speccal_test_a_total");
  EXPECT_EQ(metrics[0].at("type").str(), "counter");
  EXPECT_DOUBLE_EQ(metrics[0].at("value").number(), 7.0);

  EXPECT_EQ(metrics[1].at("type").str(), "gauge");
  EXPECT_DOUBLE_EQ(metrics[1].at("value").number(), -2.5);

  EXPECT_EQ(metrics[2].at("type").str(), "histogram");
  EXPECT_DOUBLE_EQ(metrics[2].at("count").number(), 3.0);
  const auto& buckets = metrics[2].at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("count").number(), 2.0);  // cumulative
  EXPECT_EQ(buckets[2].at("le").str(), "+Inf");
  EXPECT_DOUBLE_EQ(buckets[2].at("count").number(), 3.0);
}

TEST(Exposition, TextFormatHasTypeLinesAndInfBucket) {
  obs::Registry reg;
  reg.counter("speccal_test_a_total").add();
  const double bounds[] = {1.0};
  reg.histogram("speccal_test_c_ms", bounds).observe(2.0);

  std::ostringstream os;
  reg.write_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE speccal_test_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE speccal_test_c_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("speccal_test_c_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("speccal_test_c_ms_count 1"), std::string::npos);
}

// ---------------------------------------------------------------- spans ----

namespace {

/// Parse a session's export and return the ph:"X" events in document order.
std::vector<tj::Value> exported_spans(const obs::TraceSession& session) {
  std::ostringstream os;
  session.write_chrome_trace(os);
  const tj::Value doc = tj::parse(os.str());
  std::vector<tj::Value> spans;
  for (const auto& ev : doc.at("traceEvents").array())
    if (ev.at("ph").str() == "X") spans.push_back(ev);
  return spans;
}

}  // namespace

TEST(Trace, NestedSpansAreTimeContainedOnOneTrack) {
  obs::TraceSession session;
  {
    obs::Span outer(&session, "outer", "test");
    {
      obs::Span inner(&session, "inner", "test");
      inner.arg("depth", std::int64_t{2});
    }
  }
  const auto spans = exported_spans(session);
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by ts: outer opened first.
  EXPECT_EQ(spans[0].at("name").str(), "outer");
  EXPECT_EQ(spans[1].at("name").str(), "inner");
  EXPECT_EQ(spans[0].at("tid").number(), spans[1].at("tid").number());
  const double o0 = spans[0].at("ts").number();
  const double o1 = o0 + spans[0].at("dur").number();
  const double i0 = spans[1].at("ts").number();
  const double i1 = i0 + spans[1].at("dur").number();
  EXPECT_GE(i0, o0);  // RAII scoping == time containment == viewer nesting
  EXPECT_LE(i1, o1);
  EXPECT_DOUBLE_EQ(spans[1].at("args").at("depth").number(), 2.0);
}

TEST(Trace, ThreadsGetDistinctTracksWithMetadata) {
  obs::TraceSession session;
  {
    obs::Span main_span(&session, "main_work", "test");
    std::thread worker([&session] {
      obs::Span s(&session, "worker_work", "test");
    });
    worker.join();
  }
  std::ostringstream os;
  session.write_chrome_trace(os);
  const tj::Value doc = tj::parse(os.str());
  double main_tid = -1.0, worker_tid = -1.0;
  std::size_t thread_names = 0;
  for (const auto& ev : doc.at("traceEvents").array()) {
    if (ev.at("ph").str() == "M" && ev.at("name").str() == "thread_name")
      ++thread_names;
    if (ev.at("ph").str() != "X") continue;
    if (ev.at("name").str() == "main_work") main_tid = ev.at("tid").number();
    if (ev.at("name").str() == "worker_work") worker_tid = ev.at("tid").number();
  }
  EXPECT_GE(main_tid, 0.0);
  EXPECT_GE(worker_tid, 0.0);
  EXPECT_NE(main_tid, worker_tid);
  EXPECT_EQ(thread_names, 2u);
}

TEST(Trace, SpanNamesAndArgsSurviveEscaping) {
  obs::TraceSession session;
  {
    obs::Span s(&session, "na\"me\\with\ncontrol", "test");
    s.arg("note", "line1\nline2\t\"quoted\"");
    s.arg("ratio", 0.5);
    s.arg("ok", true);
  }
  const auto spans = exported_spans(session);  // parse() throws if malformed
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at("name").str(), "na\"me\\with\ncontrol");
  EXPECT_EQ(spans[0].at("args").at("note").str(), "line1\nline2\t\"quoted\"");
  EXPECT_TRUE(spans[0].at("args").at("ok").boolean());
}

TEST(Trace, NullSessionSpanIsInert) {
  obs::Span s(nullptr, "never_recorded");
  EXPECT_FALSE(s.active());
  s.arg("k", "v");
  s.end();  // must be a harmless no-op
}

TEST(Trace, MoveTransfersOwnershipWithoutDoubleRecord) {
  obs::TraceSession session;
  {
    obs::Span a(&session, "moved", "test");
    obs::Span b(std::move(a));
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): testing it
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(session.event_count(), 1u);
}

// ----------------------------------------------------------- StageTimer ----

TEST(StageTimer, RecordsOnExceptionUnwind) {
  cal::StageMetrics metrics;
  obs::TraceSession session;
  EXPECT_THROW(
      {
        cal::StageTimer timer(metrics, cal::Stage::kSurvey, &session,
                              "exploding-node");
        throw std::runtime_error("device died mid-stage");
      },
      std::runtime_error);
  EXPECT_TRUE(metrics.at(cal::Stage::kSurvey).ran);
  EXPECT_GE(metrics.at(cal::Stage::kSurvey).wall_ms, 0.0);
  // The unwound stage still produced its span, tagged with the node id.
  const auto spans = exported_spans(session);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at("name").str(), "survey");
  EXPECT_EQ(spans[0].at("args").at("node").str(), "exploding-node");
}

TEST(StageTimer, FeedsTheGlobalStageHistogram) {
  obs::Histogram& h = obs::Registry::global().histogram(
      "speccal_calib_stage_fuse_ms", obs::default_duration_bounds_ms());
  const std::uint64_t before = h.count();
  cal::StageMetrics metrics;
  { cal::StageTimer timer(metrics, cal::Stage::kFuse); }
  EXPECT_EQ(h.count(), before + 1);
  EXPECT_TRUE(metrics.at(cal::Stage::kFuse).ran);
}

// ---------------------------------------------------------- integration ----

TEST(Integration, PlanCachePublishesRegistryTwins) {
  obs::Counter& hits =
      obs::Registry::global().counter("speccal_dsp_plan_cache_hits_total");
  obs::Counter& misses =
      obs::Registry::global().counter("speccal_dsp_plan_cache_misses_total");
  auto& cache = speccal::dsp::PlanCache::shared();
  (void)cache.plan_f32(4096);  // warm: miss or hit depending on test order
  const std::uint64_t h0 = hits.value(), m0 = misses.value();
  (void)cache.plan_f32(4096);
  EXPECT_EQ(hits.value(), h0 + 1);  // second lookup of a cached size is a hit
  EXPECT_EQ(misses.value(), m0);
  EXPECT_GE(obs::Registry::global().gauge("speccal_dsp_plan_cache_entries").value(),
            1.0);
}

TEST(Integration, FleetRunEmitsNestedSpanTreeAndCounters) {
  const auto world = sc::make_world(2023);
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;

  obs::TraceSession session;
  cal::RunConfig run;
  run.pipeline = cfg;
  run.executor.threads = 2;
  run.executor.trace = &session;
  cal::FleetCalibrator calibrator(world, run);

  obs::Counter& nodes =
      obs::Registry::global().counter("speccal_fleet_nodes_total");
  const std::uint64_t nodes_before = nodes.value();

  std::vector<cal::FleetJob> jobs;
  for (int i = 0; i < 2; ++i) {
    cal::FleetJob job;
    job.claims.node_id = "obs-node-" + std::to_string(i);
    job.make_device = [&world]() {
      return sc::make_owned_node(sc::Site::kRooftop, world, 2023);
    };
    jobs.push_back(std::move(job));
  }
  cal::NodeRegistry registry;
  const auto summary = calibrator.run(std::move(jobs), registry);
  EXPECT_EQ(summary.calibrated, 2u);
  EXPECT_EQ(nodes.value(), nodes_before + 2);
  const std::size_t planned_stages = calibrator.pipeline().stage_plan().size();
  EXPECT_EQ(summary.executor.tasks_run, 2u * (planned_stages + 2));

  // Span tree: one fleet_run root, one "task" span per graph task (acquire
  // + one per stage + finalize, per node), and each pipeline stage span
  // time-contained in a task span on the same worker track.
  const auto spans = exported_spans(session);
  std::size_t fleet_spans = 0, task_spans = 0, stage_spans = 0;
  for (const auto& s : spans) {
    const std::string& cat = s.at("cat").str();
    if (cat == "fleet") ++fleet_spans;
    if (cat == "task") ++task_spans;
    if (cat == "stage") ++stage_spans;
  }
  EXPECT_EQ(fleet_spans, 1u);
  EXPECT_EQ(task_spans, 2u * (planned_stages + 2));
  EXPECT_EQ(stage_spans, 2u * planned_stages);

  for (const auto& stage : spans) {
    if (stage.at("cat").str() != "stage") continue;
    const double s0 = stage.at("ts").number();
    const double s1 = s0 + stage.at("dur").number();
    const double tid = stage.at("tid").number();
    const std::string& node_id = stage.at("args").at("node").str();
    bool contained = false;
    for (const auto& task : spans) {
      if (task.at("cat").str() != "task") continue;
      if (task.at("tid").number() != tid) continue;
      // Task labels are "<node>/<stage>"; this stage's own task starts
      // with the node id.
      if (task.at("name").str().rfind(node_id + "/", 0) != 0) continue;
      const double t0 = task.at("ts").number();
      const double t1 = t0 + task.at("dur").number();
      if (s0 >= t0 && s1 <= t1) contained = true;
    }
    EXPECT_TRUE(contained) << "stage span of " << node_id
                           << " not inside any of its task spans";
  }

  // And the whole global registry still exports parseable JSON.
  std::ostringstream os;
  obs::Registry::global().write_json(os);
  EXPECT_TRUE(tj::parse(os.str()).at("metrics").is_array());
}

// --------------------------------------------------------------- labels ----

TEST(RegistryLabels, LabelOrderIsCanonicalAndHandlesAreStable) {
  obs::Registry reg;
  obs::Gauge& a =
      reg.gauge("speccal_test_health", {{"node", "n1"}, {"zone", "a"}});
  obs::Gauge& b =
      reg.gauge("speccal_test_health", {{"zone", "a"}, {"node", "n1"}});
  EXPECT_EQ(&a, &b);  // label order never splits a series
  obs::Gauge& c =
      reg.gauge("speccal_test_health", {{"node", "n2"}, {"zone", "a"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryLabels, RejectsInvalidAndDuplicateLabelNames) {
  obs::Registry reg;
  EXPECT_THROW((void)reg.counter("speccal_test_l_total", {{"bad-name", "v"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("speccal_test_l_total", {{"0digit", "v"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("speccal_test_l_total", {{"", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)reg.counter("speccal_test_l_total", {{"dup", "a"}, {"dup", "b"}}),
      std::invalid_argument);
  // Values are unconstrained: dashes, spaces, anything (escaped at export).
  (void)reg.counter("speccal_test_l_total", {{"_ok_09", "dave-rooftop x"}});
}

TEST(RegistryLabels, KindIsSharedAcrossEveryLabelSetOfOneName) {
  obs::Registry reg;
  (void)reg.counter("speccal_test_mixed_total", {{"node", "a"}});
  EXPECT_THROW((void)reg.gauge("speccal_test_mixed_total", {{"node", "b"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("speccal_test_mixed_total"),
               std::invalid_argument);
}

TEST(RegistryLabels, TextExpositionEscapesValuesAndDedupesTypeLines) {
  obs::Registry reg;
  reg.gauge("speccal_test_escape", {{"node", "a\\b\"c\nd"}}).set(1.0);
  reg.gauge("speccal_test_escape", {{"node", "plain"}}).set(2.0);
  std::ostringstream os;
  reg.write_text(os);
  const std::string text = os.str();
  // Backslash, quote and newline escape per the Prometheus text format.
  EXPECT_NE(text.find("speccal_test_escape{node=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("speccal_test_escape{node=\"plain\"} 2"),
            std::string::npos);
  // One TYPE line covers every label set of the name.
  const std::string type_line = "# TYPE speccal_test_escape gauge";
  const auto first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

TEST(RegistryLabels, JsonExpositionCarriesLabelsAndStaysParseable) {
  obs::Registry reg;
  reg.gauge("speccal_test_jlabel", {{"node", "x\"y"}}).set(3.5);
  std::ostringstream os;
  reg.write_json(os);
  const auto doc = tj::parse(os.str());
  const auto& rows = doc.at("metrics").array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("name").str(), "speccal_test_jlabel");
  EXPECT_EQ(rows[0].at("labels").at("node").str(), "x\"y");
  EXPECT_DOUBLE_EQ(rows[0].at("value").number(), 3.5);
}

TEST(Registry, TextExpositionRendersNonFiniteValues) {
  obs::Registry reg;
  reg.gauge("speccal_test_nanval").set(std::nan(""));
  reg.gauge("speccal_test_posinf").set(std::numeric_limits<double>::infinity());
  reg.gauge("speccal_test_neginf").set(-std::numeric_limits<double>::infinity());
  std::ostringstream os;
  reg.write_text(os);
  const std::string text = os.str();
  // Prometheus text-format spellings, not ostream's locale-y nan/inf.
  EXPECT_NE(text.find("speccal_test_nanval NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("speccal_test_posinf +Inf"), std::string::npos);
  EXPECT_NE(text.find("speccal_test_neginf -Inf"), std::string::npos);
  // The JSON exposition of the same registry must stay strictly parseable
  // (the writer maps non-finite to null).
  std::ostringstream js;
  reg.write_json(js);
  EXPECT_NO_THROW((void)tj::parse(js.str()));
}

TEST(Registry, ScalarSamplesFlattenEverySeries) {
  obs::Registry reg;
  reg.counter("speccal_test_c_total").add(3);
  reg.gauge("speccal_test_g", {{"node", "x"}}).set(7.5);
  obs::Histogram& h =
      reg.histogram("speccal_test_h_ms", obs::default_duration_bounds_ms());
  h.observe(2.0);
  h.observe(3.0);

  const auto samples = reg.scalar_samples();
  auto find = [&](const std::string& series) -> const obs::ScalarSample* {
    for (const auto& s : samples)
      if (s.series == series) return &s;
    return nullptr;
  };
  const auto* c = find("speccal_test_c_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, obs::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);
  const auto* g = find("speccal_test_g{node=\"x\"}");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, obs::MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 7.5);
  // Histograms flatten to monotonic _count/_sum rows.
  const auto* hc = find("speccal_test_h_ms_count");
  const auto* hs = find("speccal_test_h_ms_sum");
  ASSERT_NE(hc, nullptr);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hc->kind, obs::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(hc->value, 2.0);
  EXPECT_DOUBLE_EQ(hs->value, 5.0);
}

// ------------------------------------------------------------- eventlog ----

TEST(EventLog, CapacityIsValidated) {
  EXPECT_THROW(obs::EventLog bad(0), std::invalid_argument);
}

TEST(EventLog, RingWrapKeepsNewestAndSeqSurvives) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i)
    log.log(obs::EventSeverity::kInfo, "evt", "node-a", "tv_sweep",
            {obs::SpanArg::integer("i", i)});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first, densely numbered, ending at the newest append.
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
  for (std::size_t k = 1; k < snap.size(); ++k) {
    EXPECT_EQ(snap[k].seq, snap[k - 1].seq + 1);
    EXPECT_GE(snap[k].t_ms, snap[k - 1].t_ms);
  }
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  log.log(obs::EventSeverity::kWarning, "after_clear");
  EXPECT_EQ(log.snapshot().front().seq, 10u);  // numbering keeps going
}

TEST(EventLog, KillSwitchSilencesAppends) {
  obs::EventLog log(8);
  obs::set_events_enabled(false);
  log.log(obs::EventSeverity::kError, "dropped_event");
  obs::set_events_enabled(true);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_appended(), 0u);
  log.log(obs::EventSeverity::kError, "kept_event");
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLog, JsonlExportOmitsEmptyFieldsAndEscapes) {
  obs::EventLog log(8);
  log.log(obs::EventSeverity::kError, "stage_quarantined", "dave\"rooftop",
          "tv_sweep",
          {obs::SpanArg::integer("attempts", 4),
           obs::SpanArg::str("last_error", "usb \"glitch\"")});
  log.log(obs::EventSeverity::kInfo, "bare_event");
  std::ostringstream os;
  log.write_jsonl(os);
  const std::string text = os.str();
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < text.size();) {
    const auto nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  // Every line parses standalone; the full one carries node/stage/args.
  const auto full = tj::parse(lines[0]);
  EXPECT_EQ(full.at("seq").number(), 0.0);
  EXPECT_EQ(full.at("severity").str(), "error");
  EXPECT_EQ(full.at("event").str(), "stage_quarantined");
  EXPECT_EQ(full.at("node").str(), "dave\"rooftop");
  EXPECT_EQ(full.at("stage").str(), "tv_sweep");
  EXPECT_EQ(full.at("args").at("attempts").number(), 4.0);
  EXPECT_EQ(full.at("args").at("last_error").str(), "usb \"glitch\"");
  // The bare one omits node/stage/args entirely.
  const auto bare = tj::parse(lines[1]);
  EXPECT_EQ(bare.at("event").str(), "bare_event");
  EXPECT_FALSE(bare.has("node"));
  EXPECT_FALSE(bare.has("stage"));
  EXPECT_FALSE(bare.has("args"));
}

TEST(EventLog, ConcurrentAppendHammerLosesNothing) {
  // Sized to run clean under TSan in the dedicated CI job: N writer threads
  // race appends through the one mutex; totals must be exact and the ring
  // must end dense (every surviving seq consecutive).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  obs::EventLog log(256);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i)
        log.log(obs::EventSeverity::kInfo, "hammer",
                "node-" + std::to_string(t), "stage",
                {obs::SpanArg::integer("i", i)});
    });
  for (auto& w : writers) w.join();

  EXPECT_EQ(log.total_appended(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.size(), 256u);
  EXPECT_EQ(log.dropped(), log.total_appended() - 256u);
  const auto snap = log.snapshot();
  for (std::size_t k = 1; k < snap.size(); ++k)
    ASSERT_EQ(snap[k].seq, snap[k - 1].seq + 1);
}

// -------------------------------------------------------------- sampler ----

TEST(Sampler, MaxFramesIsValidated) {
  obs::Registry reg;
  EXPECT_THROW(obs::Sampler bad(reg, 0), std::invalid_argument);
}

TEST(Sampler, RecordsOnlyChangedSeriesPerFrame) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("speccal_test_sampled_total");
  obs::Gauge& g = reg.gauge("speccal_test_sampled_depth");
  reg.gauge("speccal_test_sampled_idle");  // stays 0 forever
  obs::Sampler sampler(reg);

  c.add(5);
  g.set(2.0);
  EXPECT_EQ(sampler.sample(), 2u);  // frame 0: the two nonzero series
  EXPECT_EQ(sampler.sample(), 0u);  // nothing moved
  c.add(1);
  g.set(1.5);
  EXPECT_EQ(sampler.sample(), 2u);

  const auto frames = sampler.frames();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].tick, 0u);
  EXPECT_TRUE(frames[1].points.empty());
  for (const auto& p : frames[2].points) {
    if (p.series == "speccal_test_sampled_total") {
      EXPECT_DOUBLE_EQ(p.value, 6.0);
      EXPECT_DOUBLE_EQ(p.delta, 1.0);
    } else {
      EXPECT_EQ(p.series, "speccal_test_sampled_depth");
      EXPECT_DOUBLE_EQ(p.value, 1.5);
      EXPECT_DOUBLE_EQ(p.delta, -0.5);  // gauges move both ways
    }
  }
}

TEST(Sampler, FrameRingEvictsOldestAndExportParses) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("speccal_test_ring_total");
  obs::Sampler sampler(reg, 3);
  for (int i = 0; i < 5; ++i) {
    c.add(1);
    (void)sampler.sample();
  }
  EXPECT_EQ(sampler.frame_count(), 3u);
  EXPECT_EQ(sampler.dropped_frames(), 2u);
  const auto frames = sampler.frames();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames.front().tick, 2u);  // oldest surviving tick
  EXPECT_EQ(frames.back().tick, 4u);

  std::ostringstream os;
  sampler.write_json(os);
  const auto doc = tj::parse(os.str());
  EXPECT_EQ(doc.at("schema_version").number(), 1.0);
  EXPECT_EQ(doc.at("dropped_frames").number(), 2.0);
  ASSERT_EQ(doc.at("frames").array().size(), 3u);
  const auto& pts = doc.at("frames").array().back().at("points").array();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].at("series").str(), "speccal_test_ring_total");
  EXPECT_EQ(pts[0].at("kind").str(), "counter");
  EXPECT_DOUBLE_EQ(pts[0].at("delta").number(), 1.0);
}

// ----------------------------------------------------------- SLO tracker ----

TEST(SloTracker, BudgetsAreValidatedAndFastPathIsSilent) {
  obs::Registry reg;
  obs::SloTracker slo(reg);
  EXPECT_THROW(slo.set_budget("survey", 0.0), std::invalid_argument);
  EXPECT_THROW(slo.set_budget("survey", -1.0), std::invalid_argument);
  slo.observe("survey", 100.0);  // no budget armed: pure no-op
  EXPECT_TRUE(slo.snapshot().empty());
  EXPECT_EQ(reg.size(), 0u);  // nothing registered either
}

TEST(SloTracker, TracksBreachesAndPublishesBurnRate) {
  obs::Registry reg;
  obs::SloTracker slo(reg);
  slo.set_budget("tv_sweep", 10.0);
  slo.observe("tv_sweep", 5.0);    // under budget
  slo.observe("tv_sweep", 15.0);   // breach, 5 ms over
  slo.observe("tv_sweep", 10.0);   // exactly at budget: not a breach
  slo.observe("cell_scan", 99.0);  // un-budgeted stage stays invisible

  const auto snap = slo.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const auto& row = snap.front();
  EXPECT_EQ(row.stage, "tv_sweep");
  EXPECT_EQ(row.observed, 3u);
  EXPECT_EQ(row.breaches, 1u);
  EXPECT_DOUBLE_EQ(row.total_ms, 30.0);
  EXPECT_DOUBLE_EQ(row.total_over_ms, 5.0);
  EXPECT_DOUBLE_EQ(row.burn_rate(), 1.0);  // 30 / (10 * 3): at budget overall

  EXPECT_EQ(
      reg.counter("speccal_slo_stage_observed_total", {{"stage", "tv_sweep"}})
          .value(),
      3u);
  EXPECT_EQ(
      reg.counter("speccal_slo_stage_breaches_total", {{"stage", "tv_sweep"}})
          .value(),
      1u);
  EXPECT_DOUBLE_EQ(
      reg.gauge("speccal_slo_stage_burn_rate", {{"stage", "tv_sweep"}}).value(),
      1.0);

  slo.clear();
  slo.observe("tv_sweep", 100.0);  // disarmed again
  EXPECT_TRUE(slo.snapshot().empty());
}

TEST(SloTracker, StageTimerFeedsGlobalTracker) {
  // Arm a generous budget on the survey stage, run a StageTimer through its
  // normal RAII cycle, and confirm the observation landed.
  auto& slo = obs::SloTracker::global();
  slo.set_budget("survey", 60000.0);
  const auto observed_before = [&] {
    for (const auto& row : slo.snapshot())
      if (row.stage == "survey") return row.observed;
    return std::uint64_t{0};
  }();
  {
    cal::StageMetrics metrics;
    cal::StageTimer timer(metrics, cal::Stage::kSurvey);
  }
  std::uint64_t observed_after = 0;
  for (const auto& row : slo.snapshot())
    if (row.stage == "survey") observed_after = row.observed;
  EXPECT_EQ(observed_after, observed_before + 1);
  slo.clear();  // leave the global tracker disarmed for other tests
}
