// Tests: trust scoring, claim verification, fabrication detection.
#include <gtest/gtest.h>

#include "calib/trust.hpp"
#include "util/rng.hpp"

namespace cal = speccal::calib;
namespace g = speccal::geo;

namespace {

/// Survey with physically-consistent receptions: RSSI decays with range.
cal::SurveyResult honest_survey(std::size_t count = 30) {
  cal::SurveyResult survey;
  speccal::util::Rng rng(5);
  for (std::size_t i = 0; i < count; ++i) {
    cal::AirplaneObservation obs;
    obs.icao = static_cast<std::uint32_t>(i + 1);
    obs.range_km = 10.0 + static_cast<double>(i) * 3.0;
    obs.azimuth_deg = rng.uniform(0.0, 360.0);
    obs.received = true;
    obs.messages = 20;
    // Free-space-ish decay plus a little fading.
    obs.best_rssi_dbfs = -20.0 - 20.0 * std::log10(obs.range_km) + rng.normal(0.0, 1.5);
    survey.observations.push_back(obs);
  }
  return survey;
}

cal::FovEstimate open_fov() {
  cal::FovEstimate est;
  est.open_fraction_deg = 0.95;
  est.open_sectors = g::SectorSet({{0.0, 0.0}});
  return est;
}

cal::Classification outdoor_cls() {
  cal::Classification cls;
  cls.type = cal::InstallationType::kOutdoorOpen;
  cls.confidence = 0.8;
  return cls;
}

cal::NodeClaims honest_claims() {
  cal::NodeClaims claims;
  claims.node_id = "n1";
  claims.min_freq_hz = 400e6;
  claims.max_freq_hz = 3e9;
  claims.claims_outdoor = true;
  claims.claims_omnidirectional = true;
  return claims;
}

cal::FrequencyResponseReport clean_freq() {
  cal::FrequencyResponseReport report;
  cal::BandMeasurement m;
  m.freq_hz = 731e6;
  m.expected_dbm = -60.0;
  m.measured_dbm = -61.0;
  report.measurements.push_back(m);
  m.freq_hz = 1970e6;
  m.expected_dbm = -65.0;
  m.measured_dbm = -66.0;
  report.measurements.push_back(m);
  return report;
}

}  // namespace

TEST(Trust, HonestNodeScoresHigh) {
  const auto report = cal::evaluate_trust(honest_claims(), honest_survey(),
                                          open_fov(), clean_freq(), outdoor_cls());
  EXPECT_GE(report.score, 90.0);
  EXPECT_EQ(report.violations(), 0u);
}

TEST(Trust, FalseOmnidirectionalClaimDetected) {
  cal::FovEstimate narrow;
  narrow.open_fraction_deg = 0.2;
  narrow.open_sectors = g::SectorSet({{250.0, 290.0}});
  const auto report = cal::evaluate_trust(honest_claims(), honest_survey(), narrow,
                                          clean_freq(), outdoor_cls());
  EXPECT_GE(report.violations(), 1u);
  EXPECT_LT(report.score, 90.0);
}

TEST(Trust, FalseOutdoorClaimDetected) {
  cal::Classification indoor;
  indoor.type = cal::InstallationType::kIndoorDeep;
  indoor.confidence = 0.8;
  const auto report = cal::evaluate_trust(honest_claims(), honest_survey(),
                                          open_fov(), clean_freq(), indoor);
  EXPECT_GE(report.violations(), 1u);
  bool mentions = false;
  for (const auto& f : report.findings)
    mentions |= f.description.find("outdoor") != std::string::npos;
  EXPECT_TRUE(mentions);
}

TEST(Trust, DeadClaimedBandPenalized) {
  auto freq = clean_freq();
  // A source inside the claimed range with catastrophic loss.
  cal::BandMeasurement dead;
  dead.freq_hz = 2.6e9;
  dead.expected_dbm = -60.0;
  dead.measured_dbm = std::nullopt;
  freq.measurements.push_back(dead);
  const auto report = cal::evaluate_trust(honest_claims(), honest_survey(),
                                          open_fov(), freq, outdoor_cls());
  bool flagged = false;
  for (const auto& f : report.findings)
    flagged |= f.description.find("frequency range") != std::string::npos;
  EXPECT_TRUE(flagged);
  // Outside the claimed range nothing is flagged.
  cal::NodeClaims narrow_claims = honest_claims();
  narrow_claims.max_freq_hz = 2.0e9;
  const auto ok = cal::evaluate_trust(narrow_claims, honest_survey(), open_fov(),
                                      freq, outdoor_cls());
  EXPECT_GT(ok.score, report.score);
}

TEST(Fabrication, UnmatchedReceptionsFlagged) {
  auto survey = honest_survey();
  survey.unmatched_receptions = 10;  // a third of the stream is invented
  const auto findings = cal::detect_fabrication(survey);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].severity, cal::Severity::kViolation);
}

TEST(Fabrication, FewUnmatchedTolerated) {
  auto survey = honest_survey(40);
  survey.unmatched_receptions = 1;  // decode slip, not fraud
  for (const auto& f : cal::detect_fabrication(survey))
    EXPECT_NE(f.description.find("RSSI"), std::string::npos);
}

TEST(Fabrication, RssiRisingWithRangeIsImpossible) {
  cal::SurveyResult survey;
  for (std::size_t i = 0; i < 30; ++i) {
    cal::AirplaneObservation obs;
    obs.icao = static_cast<std::uint32_t>(i + 1);
    obs.range_km = 10.0 + static_cast<double>(i) * 3.0;
    obs.received = true;
    obs.best_rssi_dbfs = -60.0 + static_cast<double>(i);  // grows with range!
    survey.observations.push_back(obs);
  }
  const auto findings = cal::detect_fabrication(survey);
  bool violation = false;
  for (const auto& f : findings)
    violation |= f.severity == cal::Severity::kViolation &&
                 f.description.find("RSSI") != std::string::npos;
  EXPECT_TRUE(violation);
}

TEST(Fabrication, FlatRssiIsSuspicious) {
  cal::SurveyResult survey;
  for (std::size_t i = 0; i < 30; ++i) {
    cal::AirplaneObservation obs;
    obs.icao = static_cast<std::uint32_t>(i + 1);
    obs.range_km = 10.0 + static_cast<double>(i) * 3.0;
    obs.received = true;
    obs.best_rssi_dbfs = -55.0;  // constant: copy-pasted readings
    survey.observations.push_back(obs);
  }
  // Zero variance in RSSI: correlation undefined, but the rising-RSSI rule
  // cannot fire; ensure we at least do not crash and produce no spurious
  // position findings.
  const auto findings = cal::detect_fabrication(survey);
  for (const auto& f : findings)
    EXPECT_EQ(f.description.find("positions"), std::string::npos);
}

TEST(Fabrication, MismatchedPositionsFlagged) {
  cal::SurveyResult survey = honest_survey(10);
  for (auto& obs : survey.observations) {
    obs.position = {37.87, -122.27, 9000.0};
    // Claimed decode 60 km away from where the aircraft actually is.
    obs.decoded_position = g::destination(obs.position, 45.0, 60e3);
  }
  const auto findings = cal::detect_fabrication(survey);
  bool flagged = false;
  for (const auto& f : findings)
    flagged |= f.description.find("positions") != std::string::npos;
  EXPECT_TRUE(flagged);
}

TEST(Trust, ScoreStaysInRange) {
  // Stack every violation at once; score must clamp at 0.
  auto survey = honest_survey();
  survey.unmatched_receptions = 20;
  cal::FovEstimate closed;
  closed.open_fraction_deg = 0.0;
  cal::Classification indoor;
  indoor.type = cal::InstallationType::kIndoorDeep;
  indoor.confidence = 0.9;
  auto freq = clean_freq();
  freq.measurements[0].measured_dbm = std::nullopt;
  freq.measurements[1].measured_dbm = std::nullopt;
  const auto report =
      cal::evaluate_trust(honest_claims(), survey, closed, freq, indoor);
  EXPECT_GE(report.score, 0.0);
  EXPECT_LE(report.score, 100.0);
  EXPECT_GE(report.violations(), 3u);
}
