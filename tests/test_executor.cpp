// Tests: TaskGraph, the work-stealing StageExecutor, the task-oriented
// pipeline API (plan/stage_plan/NodeTaskSet) and RunConfig validation.
// Designed to run clean under ThreadSanitizer (the CI TSan job builds this
// binary alongside test_fleet).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "calib/executor.hpp"
#include "calib/fleet.hpp"
#include "calib/runconfig.hpp"
#include "calib/taskgraph.hpp"
#include "scenario/testbed.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;

namespace {

constexpr std::uint64_t kSeed = 2023;

cal::PipelineConfig fast_config() {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  return cfg;
}

std::vector<cal::FleetJob> seeded_fleet(const cal::WorldModel& world,
                                        std::size_t count) {
  std::vector<cal::FleetJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto site = static_cast<sc::Site>(i % 3);
    cal::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.claims_outdoor = site == sc::Site::kRooftop;
    job.claims.claims_omnidirectional = false;
    job.make_device = [&world, site]() {
      return sc::make_owned_node(site, world, kSeed);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

// ------------------------------------------------------------ task graph ----

TEST(TaskGraph, DependsValidatesIds) {
  cal::TaskGraph graph;
  const auto a = graph.add("a", [] {});
  const auto b = graph.add("b", [] {});
  graph.depends(b, a);
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_EQ(graph.prerequisite_count(b), 1u);
  ASSERT_EQ(graph.successors(a).size(), 1u);
  EXPECT_EQ(graph.successors(a)[0], b);

  EXPECT_THROW(graph.depends(b, 99), std::invalid_argument);
  EXPECT_THROW(graph.depends(99, a), std::invalid_argument);
  EXPECT_THROW(graph.depends(a, a), std::invalid_argument);
}

TEST(Executor, EmptyGraphRunsToEmptyStats) {
  cal::TaskGraph graph;
  cal::StageExecutor executor;
  const auto stats = executor.run(graph);
  EXPECT_EQ(stats.tasks_run, 0u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_TRUE(stats.first_error.empty());
}

TEST(Executor, RejectsCyclesAndMissingBodies) {
  {
    cal::TaskGraph graph;
    const auto a = graph.add("a", [] {});
    const auto b = graph.add("b", [] {});
    graph.depends(b, a);
    graph.depends(a, b);  // cycle
    cal::StageExecutor executor(cal::ExecutorConfig{1, nullptr});
    EXPECT_THROW(executor.run(graph), std::invalid_argument);
  }
  {
    cal::TaskGraph graph;
    (void)graph.add("hollow", {});
    cal::StageExecutor executor(cal::ExecutorConfig{1, nullptr});
    EXPECT_THROW(executor.run(graph), std::invalid_argument);
  }
}

TEST(Executor, SingleThreadOrderIsDeterministicDepthFirst) {
  // Two independent chains a0->a1->a2 and b0->b1->b2: inline execution must
  // run the first-declared chain to completion before starting the second
  // (LIFO depth-first with roots in declaration order), every time.
  for (int rep = 0; rep < 3; ++rep) {
    cal::TaskGraph graph;
    std::vector<std::string> order;
    std::vector<cal::TaskGraph::TaskId> a(3), b(3);
    for (int i = 0; i < 3; ++i)
      a[static_cast<std::size_t>(i)] = graph.add(
          "a" + std::to_string(i),
          [&order, i] { order.push_back("a" + std::to_string(i)); });
    for (int i = 0; i < 3; ++i)
      b[static_cast<std::size_t>(i)] = graph.add(
          "b" + std::to_string(i),
          [&order, i] { order.push_back("b" + std::to_string(i)); });
    for (int i = 1; i < 3; ++i) {
      graph.depends(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i - 1)]);
      graph.depends(b[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i - 1)]);
    }
    cal::StageExecutor executor(cal::ExecutorConfig{1, nullptr});
    const auto stats = executor.run(graph);
    EXPECT_EQ(stats.threads_used, 1u);
    EXPECT_EQ(stats.tasks_run, 6u);
    EXPECT_EQ(stats.tasks_stolen, 0u);
    const std::vector<std::string> want{"a0", "a1", "a2", "b0", "b1", "b2"};
    EXPECT_EQ(order, want);
  }
}

TEST(Executor, FailedTaskStillReleasesSuccessors) {
  cal::TaskGraph graph;
  bool downstream_ran = false;
  const auto boom = graph.add("boom", [] {
    throw std::runtime_error("stage exploded");
  });
  const auto after = graph.add("after", [&] { downstream_ran = true; });
  graph.depends(after, boom);
  cal::StageExecutor executor(cal::ExecutorConfig{1, nullptr});
  const auto stats = executor.run(graph);
  EXPECT_TRUE(downstream_ran);
  EXPECT_EQ(stats.tasks_run, 2u);
  EXPECT_EQ(stats.tasks_failed, 1u);
  EXPECT_EQ(stats.first_error, "stage exploded");
}

TEST(Executor, WorkStealingHammerDrainsEveryTask) {
  // Wide + deep graph, more workers than cores: every task must run exactly
  // once no matter how the steals interleave. TSan-hot on purpose.
  constexpr std::size_t kRoots = 40;
  constexpr std::size_t kDepth = 5;
  cal::TaskGraph graph;
  std::atomic<std::size_t> executed{0};
  for (std::size_t r = 0; r < kRoots; ++r) {
    cal::TaskGraph::TaskId prev = graph.add("t", [&] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t d = 1; d < kDepth; ++d) {
      const auto next = graph.add("t", [&] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      graph.depends(next, prev);
      prev = next;
    }
  }
  cal::StageExecutor executor(cal::ExecutorConfig{8, nullptr});
  const auto stats = executor.run(graph);
  EXPECT_EQ(executed.load(), kRoots * kDepth);
  EXPECT_EQ(stats.tasks_run, kRoots * kDepth);
  EXPECT_EQ(stats.tasks_failed, 0u);
}

// -------------------------------------------------------- pipeline plan ----

TEST(StagePlan, DeclaresSerialOrderAndDeviceChain) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, fast_config());
  const auto specs = pipeline.stage_plan();
  // Sky present, lo_cal enabled; the anomaly scan stays disarmed by default.
  ASSERT_EQ(specs.size(), cal::kStageCount - 1);
  EXPECT_EQ(specs.front().stage, cal::Stage::kSurvey);
  EXPECT_TRUE(specs.front().deps.empty());
  // Device-touching stages must form a chain (sdr::Device is not
  // thread-safe): each later device stage depends on the previous one.
  cal::Stage prev_device = cal::Stage::kSurvey;
  for (std::size_t k = 1; k < specs.size(); ++k) {
    if (!specs[k].uses_device) continue;
    bool chained = false;
    for (const cal::Stage dep : specs[k].deps)
      if (dep == prev_device) chained = true;
    EXPECT_TRUE(chained) << "device stage " << cal::to_string(specs[k].stage)
                         << " not chained after " << cal::to_string(prev_device);
    prev_device = specs[k].stage;
  }
}

TEST(StagePlan, ArmedAnomalyScanChainsAfterLoCal) {
  const auto world = sc::make_world(kSeed);
  auto cfg = fast_config();
  cfg.anomaly_scan.enabled = true;
  cfg.anomaly_scan.bands.push_back({"adsb-1090", 1090e6, 2e6, 0.01});
  cal::CalibrationPipeline pipeline(world, cfg);
  const auto specs = pipeline.stage_plan();
  ASSERT_EQ(specs.size(), cal::kStageCount);  // every stage armed
  const auto& scan = specs.back();
  EXPECT_EQ(scan.stage, cal::Stage::kAnomalyScan);
  EXPECT_TRUE(scan.uses_device);
  // Chained onto the end of the device chain (lo_cal is enabled here).
  ASSERT_EQ(scan.deps.size(), 1u);
  EXPECT_EQ(scan.deps.front(), cal::Stage::kLoCal);
}

TEST(NodeTaskSet, RunAllMatchesCalibrateBitwise) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, fast_config());
  cal::NodeClaims claims;
  claims.node_id = "node-0";

  const auto direct_dev = sc::make_owned_node(sc::Site::kRooftop, world, kSeed);
  const auto direct = pipeline.calibrate(*direct_dev, claims);

  const auto planned_dev = sc::make_owned_node(sc::Site::kRooftop, world, kSeed);
  cal::CalibrationReport planned;
  {
    auto set = pipeline.plan(*planned_dev, claims, planned);
    EXPECT_EQ(set.tasks().size(), pipeline.stage_plan().size());
    set.run_all();
  }
  EXPECT_EQ(0, std::memcmp(&direct.trust.score, &planned.trust.score,
                           sizeof(double)));
  EXPECT_EQ(direct.tv_readings.size(), planned.tv_readings.size());
  EXPECT_EQ(direct.fov.open_sectors.to_string(),
            planned.fov.open_sectors.to_string());
}

// ----------------------------------------------------------------- fleet ----

TEST(FleetExecutor, ZeroNodeFleetIsEmptySummary) {
  const auto world = sc::make_world(kSeed);
  cal::FleetCalibrator calibrator(cal::CalibrationPipeline(world, fast_config()));
  cal::NodeRegistry registry;
  const auto summary = calibrator.run({}, registry);
  EXPECT_EQ(summary.total, 0u);
  EXPECT_EQ(summary.calibrated, 0u);
  EXPECT_EQ(summary.executor.tasks_run, 0u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(FleetExecutor, SingleThreadBitwiseEqualsDirectPipeline) {
  const auto world = sc::make_world(kSeed);
  cal::CalibrationPipeline pipeline(world, fast_config());

  // Same claims as seeded_fleet builds for node-0 (site kRooftop).
  cal::NodeClaims claims;
  claims.node_id = "node-0";
  claims.claims_outdoor = true;
  claims.claims_omnidirectional = false;
  const auto dev = sc::make_owned_node(sc::Site::kRooftop, world, kSeed);
  const auto direct = pipeline.calibrate(*dev, claims);

  cal::RunConfig run;
  run.pipeline = fast_config();
  run.executor.threads = 1;
  cal::FleetCalibrator calibrator(world, run);
  cal::NodeRegistry registry;
  auto jobs = seeded_fleet(world, 1);
  const auto summary = calibrator.run(std::move(jobs), registry);
  EXPECT_EQ(summary.calibrated, 1u);
  EXPECT_EQ(summary.executor.threads_used, 1u);
  EXPECT_EQ(summary.executor.tasks_stolen, 0u);

  const auto* report = registry.find("node-0");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(0, std::memcmp(&direct.trust.score, &report->trust.score,
                           sizeof(double)));
}

TEST(FleetExecutor, CancellationLeavesNoOrphanTasks) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline = fast_config();
  run.executor.threads = 1;
  cal::FleetConfig cfg;
  cal::FleetCalibrator* target = nullptr;
  cfg.on_progress = [&target](const cal::FleetProgress& p) {
    if (p.completed == 2 && target != nullptr) target->request_cancel();
  };
  cal::FleetCalibrator fleet(world, run, cfg);
  target = &fleet;

  cal::NodeRegistry registry;
  const auto jobs = seeded_fleet(world, 6);
  const auto summary = fleet.run(jobs, registry);
  EXPECT_EQ(summary.calibrated, 2u);
  EXPECT_EQ(summary.skipped, 4u);
  EXPECT_EQ(registry.size(), 2u);
  // No orphans: the graph fully drained — every task (acquire + stages +
  // finalize, per node) executed, skipped nodes' tasks as no-ops.
  const std::size_t specs = fleet.pipeline().stage_plan().size();
  EXPECT_EQ(summary.executor.tasks_run, jobs.size() * (specs + 2));
  EXPECT_EQ(summary.executor.tasks_failed, 0u);
}

TEST(FleetExecutor, QuarantinedStageDoesNotBlockOtherNodes) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline = fast_config();
  run.retry.max_attempts = 2;
  run.retry.quarantine = true;
  run.executor.threads = 4;
  cal::FleetCalibrator calibrator(world, run);

  auto jobs = seeded_fleet(world, 5);
  // One node whose factory throws: its subgraph degrades to no-ops while
  // the other nodes' stages keep flowing through the same worker pool.
  cal::FleetJob doa;
  doa.claims.node_id = "node-doa";
  doa.make_device = []() -> std::unique_ptr<speccal::sdr::Device> {
    throw std::runtime_error("usb enumeration failed");
  };
  jobs.push_back(std::move(doa));

  cal::NodeRegistry registry;
  const auto summary = calibrator.run(std::move(jobs), registry);
  EXPECT_EQ(summary.calibrated, 6u);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_EQ(summary.executor.tasks_run, 6u * (calibrator.pipeline().stage_plan().size() + 2));
  const auto* broken = registry.find("node-doa");
  ASSERT_NE(broken, nullptr);
  EXPECT_TRUE(broken->aborted());
  for (std::size_t i = 0; i < 5; ++i) {
    const auto* ok = registry.find("node-" + std::to_string(i));
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->aborted());
    EXPECT_GT(ok->trust.score, 0.0);
  }
}

// ------------------------------------------------------------- runconfig ----

TEST(RunConfig, ValidationNamesOffendingField) {
  cal::RunConfig run;
  run.retry.max_attempts = 0;
  try {
    run.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RunConfig.retry.max_attempts"),
              std::string::npos);
  }

  run = {};
  run.retry.jitter_fraction = 1.5;
  EXPECT_THROW(run.validate(), std::invalid_argument);

  run = {};
  run.pipeline.cell_search_radius_m = 0.0;
  try {
    run.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(
        std::string(e.what()).find("RunConfig.pipeline.cell_search_radius_m"),
        std::string::npos);
  }

  run = {};
  EXPECT_NO_THROW(run.validate());
}

TEST(RunConfig, ResolvedPipelineAliasesRetry) {
  // Old-style config: retry set on the pipeline, RunConfig::retry default.
  cal::RunConfig aliased;
  aliased.pipeline.retry.max_attempts = 4;
  EXPECT_EQ(aliased.resolved_pipeline().retry.max_attempts, 4);

  // Canonical field wins when set.
  cal::RunConfig canonical;
  canonical.pipeline.retry.max_attempts = 4;
  canonical.retry.max_attempts = 7;
  EXPECT_EQ(canonical.resolved_pipeline().retry.max_attempts, 7);
}

TEST(RunConfig, FleetCtorValidatesAndAppliesThreads) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig bad;
  bad.pipeline = fast_config();
  bad.retry.backoff_multiplier = 0.5;
  EXPECT_THROW(cal::FleetCalibrator(world, bad), std::invalid_argument);

  cal::RunConfig good;
  good.pipeline = fast_config();
  good.executor.threads = 3;
  cal::FleetCalibrator calibrator(world, good);
  EXPECT_EQ(calibrator.threads(), 3u);
  EXPECT_EQ(calibrator.effective_threads(100), 3u);
}
