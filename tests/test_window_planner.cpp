// Tests: measurement-window planning (§5 end-to-end system).
#include <gtest/gtest.h>

#include "calib/window_planner.hpp"

namespace cal = speccal::calib;

TEST(WindowPlanner, ConfigIsCarried) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 4;
  cfg.min_marginal_gain = 0.0;
  const cal::WindowPlanner planner(cfg);
  EXPECT_EQ(planner.config().max_windows, 4u);
  const std::vector<cal::TrafficForecast> profile{{0.0, 5.0}, {8.0, 60.0},
                                                  {18.0, 80.0}};
  EXPECT_EQ(planner.plan(profile).windows.size(), 3u);
}

TEST(WindowPlanner, CoverageFunctionProperties) {
  // Zero aircraft cover nothing; infinite traffic covers everything.
  EXPECT_DOUBLE_EQ(cal::expected_sector_coverage(0.0, 36), 0.0);
  EXPECT_NEAR(cal::expected_sector_coverage(10000.0, 36), 1.0, 1e-6);
  // Monotone in the aircraft count.
  double prev = 0.0;
  for (double n = 1.0; n < 200.0; n *= 1.5) {
    const double c = cal::expected_sector_coverage(n, 36);
    EXPECT_GT(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  // One aircraft in S sectors covers exactly 1/S.
  EXPECT_NEAR(cal::expected_sector_coverage(1.0, 36), 1.0 / 36.0, 1e-9);
  EXPECT_DOUBLE_EQ(cal::expected_sector_coverage(5.0, 0), 0.0);
}

namespace {
std::vector<cal::TrafficForecast> day_profile() {
  // Quiet night, morning and evening rush.
  std::vector<cal::TrafficForecast> f;
  for (int h = 0; h < 24; ++h) {
    double rate = 5.0;                    // overnight trickle
    if (h >= 7 && h <= 10) rate = 60.0;   // morning bank
    if (h >= 16 && h <= 20) rate = 80.0;  // evening bank
    f.push_back({static_cast<double>(h), rate});
  }
  return f;
}

cal::Schedule plan_day(const cal::ScheduleConfig& cfg) {
  return cal::WindowPlanner(cfg).plan(day_profile());
}
}  // namespace

TEST(WindowPlanner, PicksBusyHoursFirst) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 3;
  cfg.min_marginal_gain = 0.0;
  const auto schedule = plan_day(cfg);
  ASSERT_EQ(schedule.windows.size(), 3u);
  for (const auto& w : schedule.windows) {
    EXPECT_TRUE((w.hour_of_day >= 7 && w.hour_of_day <= 10) ||
                (w.hour_of_day >= 16 && w.hour_of_day <= 20))
        << "picked quiet hour " << w.hour_of_day;
  }
}

TEST(WindowPlanner, MarginalGainDecreases) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 6;
  cfg.min_marginal_gain = 0.0;
  const auto schedule = plan_day(cfg);
  // Re-sort by gain (output is sorted by hour) and check the greedy
  // picks were decreasing.
  std::vector<double> gains;
  for (const auto& w : schedule.windows) gains.push_back(w.expected_new_coverage);
  std::sort(gains.begin(), gains.end(), std::greater<>());
  // Total coverage equals 1 - prod(1 - c_i) which the gains decompose.
  double covered = 0.0;
  for (double gain : gains) covered += gain;
  EXPECT_NEAR(covered, schedule.expected_total_coverage, 1e-9);
  EXPECT_GT(schedule.expected_total_coverage, 0.8);
  EXPECT_LE(schedule.expected_total_coverage, 1.0);
}

TEST(WindowPlanner, StopsWhenGainExhausted) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 24;
  cfg.min_marginal_gain = 0.05;
  const auto schedule = plan_day(cfg);
  // With a 5% floor the long tail of redundant windows is skipped.
  EXPECT_LT(schedule.windows.size(), 10u);
  EXPECT_GE(schedule.windows.size(), 1u);
}

TEST(WindowPlanner, RespectsMaxWindows) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 2;
  cfg.min_marginal_gain = 0.0;
  EXPECT_EQ(plan_day(cfg).windows.size(), 2u);
}

TEST(WindowPlanner, EmptyForecast) {
  const auto schedule = cal::WindowPlanner().plan({});
  EXPECT_TRUE(schedule.windows.empty());
  EXPECT_DOUBLE_EQ(schedule.expected_total_coverage, 0.0);
}

TEST(WindowPlanner, OutputSortedByHour) {
  cal::ScheduleConfig cfg;
  cfg.max_windows = 5;
  cfg.min_marginal_gain = 0.0;
  const auto schedule = plan_day(cfg);
  for (std::size_t i = 1; i < schedule.windows.size(); ++i)
    EXPECT_LT(schedule.windows[i - 1].hour_of_day, schedule.windows[i].hour_of_day);
}
