// Unit tests: ATSC channel plan and the band-pass + Parseval power meter.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "prop/pathloss.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "tv/channels.hpp"
#include "tv/power_meter.hpp"
#include "util/rng.hpp"

namespace tv = speccal::tv;
namespace s = speccal::sdr;
namespace g = speccal::geo;
using speccal::util::Rng;

// --------------------------------------------------------------- channels ----

TEST(Channels, PaperFigure4Frequencies) {
  // The six centre frequencies of Figure 4 map to these RF channels.
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(13).value(), 213e6);
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(14).value(), 473e6);
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(22).value(), 521e6);
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(26).value(), 545e6);
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(33).value(), 587e6);
  EXPECT_DOUBLE_EQ(tv::channel_center_hz(36).value(), 605e6);
}

TEST(Channels, BandStructure) {
  EXPECT_DOUBLE_EQ(tv::channel_lower_edge_hz(2).value(), 54e6);
  EXPECT_DOUBLE_EQ(tv::channel_lower_edge_hz(7).value(), 174e6);
  EXPECT_DOUBLE_EQ(tv::channel_lower_edge_hz(14).value(), 470e6);
  EXPECT_FALSE(tv::channel_lower_edge_hz(1).has_value());
  EXPECT_FALSE(tv::channel_lower_edge_hz(37).has_value());
}

TEST(Channels, FrequencyLookupInvertsTable) {
  for (int ch = 2; ch <= 36; ++ch) {
    const auto center = tv::channel_center_hz(ch);
    ASSERT_TRUE(center.has_value());
    EXPECT_EQ(tv::channel_for_frequency(*center).value(), ch);
  }
  EXPECT_FALSE(tv::channel_for_frequency(100e6).has_value());  // FM band gap
  EXPECT_FALSE(tv::channel_for_frequency(1e9).has_value());
}

// ------------------------------------------------------------ power meter ----

namespace {
/// One station + simulated SDR, open-sky receiver.
struct MeterFixture {
  s::RxEnvironment rx;
  std::shared_ptr<s::FixedEmitterSource> source;
  std::unique_ptr<s::SimulatedSdr> device;

  explicit MeterFixture(int channel, double range_m = 30e3, double erp_dbm = 80.0) {
    rx.position = {37.87, -122.27, 10.0};
    s::EmitterConfig cfg;
    cfg.emitter_id = 50;
    cfg.position = g::destination(rx.position, 270.0, range_m);
    cfg.position.alt_m = 250.0;
    cfg.carrier_hz = tv::channel_center_hz(channel).value();
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = erp_dbm;
    cfg.link.model = speccal::prop::PathModel::kTwoSlope;
    cfg.link.n1 = 2.0;
    cfg.link.n2 = 3.5;
    cfg.link.breakpoint_m = 10e3;
    cfg.pilot_offset_hz = tv::kPilotOffsetHz;
    source = std::make_shared<s::FixedEmitterSource>(cfg, Rng(60));
    device = std::make_unique<s::SimulatedSdr>(s::SimulatedSdr::bladerf_like_info(),
                                               rx, Rng(61));
    device->add_source(source);
  }
};
}  // namespace

TEST(PowerMeter, MeasuresKnownPowerThroughFullPipeline) {
  MeterFixture fix(22);
  const double expected_dbm = fix.source->received_power_dbm(fix.rx);

  tv::PowerMeterConfig config;
  config.fixed_gain_db = 10.0;
  const tv::PowerMeter meter(config);
  const auto reading = meter.measure_channel(*fix.device, 22);

  ASSERT_TRUE(reading.tune_ok);
  EXPECT_EQ(reading.rf_channel, 22);
  EXPECT_DOUBLE_EQ(reading.center_hz, 521e6);
  EXPECT_GT(reading.samples_used, 10000u);
  // Full waveform path should land within ~1.5 dB of the link budget.
  EXPECT_NEAR(reading.power_dbm, expected_dbm, 1.5);
  EXPECT_NEAR(reading.power_dbfs, expected_dbm + 10.0 + 10.0, 1.5);
}

TEST(PowerMeter, FixedGainIsHonored) {
  MeterFixture fix(22);
  tv::PowerMeterConfig lo;
  lo.fixed_gain_db = 5.0;
  tv::PowerMeterConfig hi;
  hi.fixed_gain_db = 25.0;
  const auto r_lo = tv::PowerMeter(lo).measure_channel(*fix.device, 22);
  const auto r_hi = tv::PowerMeter(hi).measure_channel(*fix.device, 22);
  // dBFS shifts by the gain difference; dBm referred to the port does not.
  EXPECT_NEAR(r_hi.power_dbfs - r_lo.power_dbfs, 20.0, 1.0);
  EXPECT_NEAR(r_hi.power_dbm, r_lo.power_dbm, 1.0);
  EXPECT_DOUBLE_EQ(fix.device->gain_db(), 25.0);  // left in manual gain
}

TEST(PowerMeter, EmptyChannelReadsNoiseFloor) {
  MeterFixture fix(22);
  tv::PowerMeterConfig config;
  // Enough gain that the thermal floor sits above the ADC quantization
  // step; at very low gain the 12-bit converter crushes the noise.
  config.fixed_gain_db = 30.0;
  const tv::PowerMeter meter(config);
  const auto occupied = meter.measure_channel(*fix.device, 22);
  const auto vacant = meter.measure_channel(*fix.device, 30);  // nothing there
  EXPECT_GT(occupied.power_dbfs, vacant.power_dbfs + 20.0);
  // Vacant channel: thermal noise in 5.38 MHz + NF + gain - full scale.
  const double floor_dbm = speccal::prop::noise_floor_dbm(5.38e6, 7.0);
  EXPECT_NEAR(vacant.power_dbm, floor_dbm, 2.5);
}

TEST(PowerMeter, SweepCoversAllChannels) {
  MeterFixture fix(22);
  tv::PowerMeterConfig config;
  config.fixed_gain_db = 10.0;
  const tv::PowerMeter meter(config);
  const auto readings = meter.sweep(*fix.device, {13, 14, 22});
  ASSERT_EQ(readings.size(), 3u);
  EXPECT_EQ(readings[0].rf_channel, 13);
  EXPECT_EQ(readings[2].rf_channel, 22);
  // Only channel 22 carries our station.
  EXPECT_GT(readings[2].power_dbfs, readings[0].power_dbfs + 15.0);
}

TEST(PowerMeter, InvalidChannelReportsFailure) {
  MeterFixture fix(22);
  const tv::PowerMeter meter;
  const auto reading = meter.measure_channel(*fix.device, 99);
  EXPECT_FALSE(reading.tune_ok);
  EXPECT_EQ(reading.samples_used, 0u);
}

TEST(PowerMeter, ValidationNamesOffendingParameter) {
  const auto expect_throw_naming = [](tv::PowerMeterConfig cfg, const char* param) {
    try {
      tv::PowerMeter meter(cfg);
      FAIL() << "expected std::invalid_argument naming " << param;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(param), std::string::npos)
          << "message was: " << e.what();
    }
  };

  tv::PowerMeterConfig cfg;
  cfg.sample_rate_hz = 0.0;
  expect_throw_naming(cfg, "sample_rate_hz");

  cfg = {};
  cfg.capture_duration_s = -1.0;
  expect_throw_naming(cfg, "capture_duration_s");

  cfg = {};
  cfg.filter_taps = 2;
  expect_throw_naming(cfg, "filter_taps");

  cfg = {};
  cfg.measure_bandwidth_hz = cfg.sample_rate_hz;  // must fit inside Nyquist
  expect_throw_naming(cfg, "measure_bandwidth_hz");

  // The spectral method's Welch settings follow the WelchConfig contract.
  cfg = {};
  cfg.method = tv::PowerMeterConfig::Method::kSpectral;
  cfg.welch.segment_size = 1000;
  expect_throw_naming(cfg, "segment_size");
}

TEST(PowerMeter, SpectralMethodAgreesWithTimeDomain) {
  // Parseval's identity: band-passed time-domain power equals the Welch
  // PSD integrated over the same band. The two integration methods must
  // agree on a real 8VSB-like channel to within a fraction of a dB.
  MeterFixture fix(22);
  tv::PowerMeterConfig time_cfg;
  time_cfg.fixed_gain_db = 10.0;
  tv::PowerMeterConfig spec_cfg = time_cfg;
  spec_cfg.method = tv::PowerMeterConfig::Method::kSpectral;

  const auto time_reading = tv::PowerMeter(time_cfg).measure_channel(*fix.device, 22);
  const auto spec_reading = tv::PowerMeter(spec_cfg).measure_channel(*fix.device, 22);
  ASSERT_TRUE(time_reading.tune_ok);
  ASSERT_TRUE(spec_reading.tune_ok);
  EXPECT_GT(spec_reading.samples_used, 10000u);
  EXPECT_NEAR(spec_reading.power_dbfs, time_reading.power_dbfs, 0.75);
  EXPECT_NEAR(spec_reading.power_dbm, time_reading.power_dbm, 0.75);
}

TEST(PowerMeter, ObstructionAttenuatesReading) {
  // Same station measured through a 20 dB wall: the reading drops ~20 dB.
  MeterFixture clear_fix(22);
  MeterFixture blocked_fix(22);
  speccal::prop::ObstructionMap wall;
  wall.set_omni_loss(20.0, 0.0);
  // Rebuild the blocked device with the wall in its environment.
  auto rx = blocked_fix.rx;
  rx.obstructions = &wall;
  s::SimulatedSdr blocked_dev(s::SimulatedSdr::bladerf_like_info(), rx, Rng(62));
  blocked_dev.add_source(blocked_fix.source);

  tv::PowerMeterConfig config;
  config.fixed_gain_db = 10.0;
  const tv::PowerMeter meter(config);
  const auto clear_reading = meter.measure_channel(*clear_fix.device, 22);
  const auto blocked_reading = meter.measure_channel(blocked_dev, 22);
  EXPECT_NEAR(clear_reading.power_dbfs - blocked_reading.power_dbfs, 20.0, 2.0);
}
