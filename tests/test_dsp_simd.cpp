// SIMD kernel equivalence, streaming Goertzel semantics, and detector-gate
// false-negative bounds (DESIGN.md §14).
//
// Every dispatched kernel in dsp/simd.hpp is compared against its scalar
// reference sibling (dsp::simd::scalar::*) on the same inputs, including
// odd lengths that exercise the vector tails. On a build with
// SPECCAL_DISABLE_SIMD the dispatched kernels *are* the scalar references,
// so the comparisons degenerate to exact self-agreement — the CI scalar leg
// runs this same binary to prove the fallback path compiles and passes.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

#include "adsb/crc.hpp"
#include "adsb/ppm.hpp"
#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/nco.hpp"
#include "dsp/simd.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "tv/power_meter.hpp"
#include "geo/wgs84.hpp"
#include "util/rng.hpp"

namespace d = speccal::dsp;
namespace s = speccal::sdr;

namespace {

using CFloat = std::complex<float>;
using CDouble = std::complex<double>;

/// Deterministic complex noise block.
std::vector<CFloat> noise_block(std::size_t n, unsigned seed, float scale = 1.0f) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  std::vector<CFloat> out(n);
  for (auto& v : out) v = {dist(gen), dist(gen)};
  return out;
}

std::vector<float> real_block(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

/// Complex tone + white noise at sample rate fs.
std::vector<CFloat> tone_plus_noise(double freq_hz, double fs, std::size_t n,
                                    float amp, float noise, unsigned seed) {
  auto out = noise_block(n, seed, noise);
  const double w = 2.0 * std::numbers::pi * freq_hz / fs;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = w * static_cast<double>(i);
    out[i] += CFloat(amp * static_cast<float>(std::cos(ph)),
                     amp * static_cast<float>(std::sin(ph)));
  }
  return out;
}

/// Lengths that exercise full vectors, tails, and the scalar-only floor.
const std::size_t kLengths[] = {1, 2, 3, 7, 8, 15, 16, 17, 64, 255, 1024, 1027};

}  // namespace

// ------------------------------------------------- kernel equivalence ----

TEST(SimdKernels, BackendReportsAName) {
  EXPECT_NE(d::simd::backend_name(), nullptr);
#ifdef SPECCAL_DISABLE_SIMD
  EXPECT_EQ(d::simd::kBackend, d::simd::Backend::kScalar);
#endif
}

TEST(SimdKernels, MagnitudeSquaredMatchesScalarBitwise) {
  for (std::size_t n : kLengths) {
    const auto x = noise_block(n, 100 + static_cast<unsigned>(n));
    std::vector<float> got(n, -1.0f), want(n, -1.0f);
    d::simd::magnitude_squared(x.data(), got.data(), n);
    d::simd::scalar::magnitude_squared(x.data(), want.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SimdKernels, ApplyWindowMatchesScalarBitwise) {
  for (std::size_t n : kLengths) {
    const auto x = noise_block(n, 200 + static_cast<unsigned>(n));
    const auto w = real_block(n, 201 + static_cast<unsigned>(n));
    std::vector<CFloat> got(n), want(n);
    d::simd::apply_window(x.data(), w.data(), got.data(), n);
    d::simd::scalar::apply_window(x.data(), w.data(), want.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SimdKernels, PowerKernelsMatchScalarBitwise) {
  for (std::size_t n : kLengths) {
    const auto x = noise_block(n, 300 + static_cast<unsigned>(n));
    const double scale = 0.37;
    std::vector<double> got(n, 1.0), want(n, 1.0);
    d::simd::accumulate_power(x.data(), scale, got.data(), n);
    d::simd::scalar::accumulate_power(x.data(), scale, want.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << "accumulate n=" << n << " i=" << i;
    d::simd::power_scaled(x.data(), scale, got.data(), n);
    d::simd::scalar::power_scaled(x.data(), scale, want.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << "scaled n=" << n << " i=" << i;
  }
}

TEST(SimdKernels, ReductionsWithinDocumentedTolerance) {
  for (std::size_t n : kLengths) {
    const auto x = noise_block(n, 400 + static_cast<unsigned>(n));
    const auto y = noise_block(n, 401 + static_cast<unsigned>(n));
    const double sp = d::simd::sum_power(x.data(), n);
    const double sp_ref = d::simd::scalar::sum_power(x.data(), n);
    EXPECT_NEAR(sp, sp_ref, d::simd::kSimdEquivalenceTolerance * std::max(1.0, sp_ref))
        << "sum_power n=" << n;

    const CDouble dc = d::simd::dot_conj(x.data(), y.data(), n);
    const CDouble dc_ref = d::simd::scalar::dot_conj(x.data(), y.data(), n);
    EXPECT_LE(std::abs(dc - dc_ref),
              d::simd::kSimdEquivalenceTolerance * std::max(1.0, std::abs(dc_ref)))
        << "dot_conj n=" << n;

    std::vector<CDouble> xd(n), yd(n);
    for (std::size_t i = 0; i < n; ++i) {
      xd[i] = CDouble(x[i].real(), x[i].imag());
      yd[i] = CDouble(y[i].real(), y[i].imag());
    }
    const CDouble cd = d::simd::cdot(xd.data(), yd.data(), n);
    const CDouble cd_ref = d::simd::scalar::cdot(xd.data(), yd.data(), n);
    EXPECT_LE(std::abs(cd - cd_ref),
              d::simd::kSimdEquivalenceTolerance * std::max(1.0, std::abs(cd_ref)))
        << "cdot n=" << n;
  }
}

TEST(SimdKernels, ComplexMultiplyMatchesScalarBitwise) {
  for (std::size_t n : kLengths) {
    const auto w = noise_block(n, 501 + static_cast<unsigned>(n));
    auto got = noise_block(n, 500 + static_cast<unsigned>(n));
    auto want = got;
    d::simd::cmul_inplace(got.data(), w.data(), n);
    d::simd::scalar::cmul_inplace(want.data(), w.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SimdKernels, FftStageMatchesScalarBitwise) {
  // One full butterfly stage at several sub-transform lengths, interleaved
  // float layout as BasicFftPlan stores it.
  for (std::size_t n : {8u, 64u, 256u}) {
    for (std::size_t len = 2; len <= n; len *= 2) {
      const std::size_t half = len / 2;
      std::vector<float> tw(2 * half);
      for (std::size_t j = 0; j < half; ++j) {
        const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(len);
        tw[2 * j] = static_cast<float>(std::cos(ang));
        tw[2 * j + 1] = static_cast<float>(std::sin(ang));
      }
      auto got = real_block(2 * n, 600 + static_cast<unsigned>(n + len));
      auto want = got;
      d::simd::fft_radix2_stage(got.data(), n, len, tw.data(), 1.0f);
      d::simd::scalar::fft_radix2_stage(want.data(), n, len, tw.data(), 1.0f);
      for (std::size_t i = 0; i < 2 * n; ++i)
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " len=" << len << " i=" << i;
    }
  }
}

TEST(SimdKernels, PreambleCandidatesMatchScalarBitwise) {
  // Bit-identity of the vectorized first-stage preamble test is the
  // zero-false-negative proof for the ADS-B gate: any start position the
  // scalar check accepts, the bitmap accepts.
  for (std::size_t n_pos : {1u, 5u, 33u, 1000u}) {
    auto mag = real_block(n_pos + 15, 700 + static_cast<unsigned>(n_pos));
    for (auto& m : mag) m = std::fabs(m);
    // Plant a few strong preamble-shaped patterns.
    for (std::size_t base = 0; base + 16 <= mag.size(); base += 37)
      for (std::size_t p : {0u, 2u, 7u, 9u}) mag[base + p] += 10.0f;
    std::vector<std::uint8_t> got(n_pos, 0xFF), want(n_pos, 0xFF);
    d::simd::preamble_candidates(mag.data(), n_pos, got.data());
    d::simd::scalar::preamble_candidates(mag.data(), n_pos, want.data());
    for (std::size_t i = 0; i < n_pos; ++i)
      ASSERT_EQ(got[i], want[i]) << "n_pos=" << n_pos << " i=" << i;
  }
}

// ------------------------------------------------- streaming goertzel ----

TEST(GoertzelStreaming, MatchesDirectDftOnAndOffGrid) {
  constexpr double fs = 1.92e6;
  constexpr std::size_t n = 2048;
  const auto x = noise_block(n, 800);
  // On-grid (exact FFT bin k*fs/N) and off-grid (fractional) frequencies.
  const double freqs[] = {fs * 32.0 / static_cast<double>(n),
                          fs * 32.37 / static_cast<double>(n),
                          -fs * 100.5 / static_cast<double>(n)};
  for (double f : freqs) {
    d::Goertzel g({f}, fs);
    g.feed(x);
    // Direct DFT at the same frequency, double precision.
    CDouble acc{};
    const double w = 2.0 * std::numbers::pi * f / fs;
    for (std::size_t i = 0; i < n; ++i) {
      const double ph = -w * static_cast<double>(i);
      acc += CDouble(x[i].real(), x[i].imag()) * CDouble(std::cos(ph), std::sin(ph));
    }
    acc /= static_cast<double>(n);
    EXPECT_LE(std::abs(g.output(0) - acc), 1e-6 * std::max(1.0, std::abs(acc)))
        << "f=" << f;
    EXPECT_NEAR(g.power(0), std::norm(acc), 1e-6 * std::max(1.0, std::norm(acc)))
        << "f=" << f;
  }
}

TEST(GoertzelStreaming, MultiFrequencyMatchesSingleBitwise) {
  constexpr double fs = 2e6;
  const auto x = tone_plus_noise(251e3, fs, 12345, 0.5f, 0.01f, 801);
  const std::vector<double> freqs = {251e3, -480e3, 13e3, 999e3};
  d::Goertzel multi(freqs, fs);
  // Feed in uneven chunks; chunking must not change the result.
  std::span<const CFloat> span(x);
  multi.feed(span.first(1000));
  multi.feed(span.subspan(1000, 4097));
  multi.feed(span.subspan(5097));
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    d::Goertzel single({freqs[k]}, fs);
    single.feed(x);
    EXPECT_EQ(multi.power(k), single.power(0)) << "bin " << k;
    EXPECT_EQ(multi.output(k), single.output(0)) << "bin " << k;
  }
}

TEST(GoertzelStreaming, WrapperAndValidation) {
  constexpr double fs = 2e6;
  const auto x = tone_plus_noise(309441.0, fs, 20000, 0.3f, 0.001f, 802);
  // The legacy one-shot convention: |X|^2 / N^2 (tone of amplitude a reads
  // a^2). The streaming class must reproduce it exactly via the shim.
  d::Goertzel g({309441.0}, fs);
  g.feed(x);
  EXPECT_EQ(d::goertzel_power(x, 309441.0, fs), g.power(0));
  EXPECT_NEAR(g.power(0), 0.09, 0.01);
  EXPECT_THROW(d::Goertzel(std::vector<double>{}, fs), std::invalid_argument);
  EXPECT_THROW(d::Goertzel({1.0}, 0.0), std::invalid_argument);
  d::Goertzel empty({1.0}, fs);
  EXPECT_DOUBLE_EQ(empty.power(0), 0.0);  // nothing fed yet
}

// ------------------------------------------------------ other kernels ----

TEST(NcoBlock, AddToneMatchesPerSamplePath) {
  constexpr double fs = 8e6;
  for (std::size_t n : {5u, 16u, 1000u, 4097u}) {
    d::Nco block_nco(-2.69e6, fs);
    d::Nco ref_nco(-2.69e6, fs);
    block_nco.set_phase(1.25);
    ref_nco.set_phase(1.25);
    std::vector<CFloat> got(n, CFloat(0.5f, -0.5f));
    std::vector<CFloat> want(n, CFloat(0.5f, -0.5f));
    // Two consecutive blocks: phase must stay continuous across the seam.
    const std::size_t first = n / 2;
    block_nco.add_tone(std::span<CFloat>(got).first(first), 0.7f);
    block_nco.add_tone(std::span<CFloat>(got).subspan(first), 0.7f);
    for (auto& v : want) v += ref_nco.next() * 0.7f;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i].real(), want[i].real(), 1e-5) << "n=" << n << " i=" << i;
      EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-5) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FirSimd, MatchesDirectConvolution) {
  const auto taps_f = real_block(31, 900);
  const auto x = noise_block(333, 901);
  std::vector<CDouble> taps(taps_f.size());
  for (std::size_t i = 0; i < taps_f.size(); ++i) taps[i] = taps_f[i];
  d::FirFilter fir(taps);
  std::vector<CFloat> got;
  fir.process(x, got);
  ASSERT_EQ(got.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    CDouble acc{};
    for (std::size_t j = 0; j < taps_f.size() && j <= i; ++j)
      acc += CDouble(x[i - j].real(), x[i - j].imag()) *
             static_cast<double>(taps_f[j]);
    EXPECT_NEAR(got[i].real(), acc.real(), 1e-4) << "i=" << i;
    EXPECT_NEAR(got[i].imag(), acc.imag(), 1e-4) << "i=" << i;
  }
}

// -------------------------------------------- gate false-negative bounds ----

namespace {
/// Simulated receiver with one ATSC-like emitter whose pilot sits at the
/// standard offset, ERP chosen so the channel lands near the given SNR at
/// the meter's fixed gain.
struct TvFixture {
  s::RxEnvironment rx;
  std::unique_ptr<s::SimulatedSdr> device;

  explicit TvFixture(double eirp_dbm, unsigned seed) {
    rx.position = {37.87, -122.27, 10.0};
    device = std::make_unique<s::SimulatedSdr>(s::SimulatedSdr::bladerf_like_info(),
                                               rx, speccal::util::Rng(seed));
    s::EmitterConfig cfg;
    cfg.emitter_id = 11;
    cfg.position = speccal::geo::destination(rx.position, 45.0, 30e3);
    cfg.position.alt_m = 300.0;
    cfg.carrier_hz = *speccal::tv::channel_center_hz(27);
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = eirp_dbm;
    cfg.link.model = speccal::prop::PathModel::kFreeSpace;
    cfg.pilot_offset_hz = speccal::tv::kPilotOffsetFromCenterHz;
    device->add_source(std::make_shared<s::FixedEmitterSource>(cfg, speccal::util::Rng(seed + 1)));
  }
};
}  // namespace

TEST(PilotGate, NoFalseNegativesAtThresholdSnr) {
  // A weak station: the pilot concentrates ~7% of channel power into one
  // Goertzel bin, so even near the meter's detection floor the pilot bin
  // clears the reference bins by tens of dB — the gate must never skip an
  // occupied channel here.
  speccal::tv::PowerMeter meter;
  for (unsigned trial = 0; trial < 10; ++trial) {
    TvFixture fix(20.0, 40 + trial);  // weak but present
    const auto reading = meter.measure_channel(*fix.device, 27);
    ASSERT_TRUE(reading.tune_ok);
    EXPECT_FALSE(reading.gated) << "trial " << trial;
  }
}

TEST(PilotGate, VacantChannelSkips) {
  speccal::tv::PowerMeter meter;
  TvFixture fix(20.0, 77);
  // Channel 33 carries nothing; the gate should short-circuit and the
  // abbreviated reading still reports a sane noise power.
  const auto reading = meter.measure_channel(*fix.device, 33);
  ASSERT_TRUE(reading.tune_ok);
  EXPECT_TRUE(reading.gated);
  EXPECT_GT(reading.samples_used, 0u);
  EXPECT_LT(reading.power_dbfs, -40.0);
}

TEST(AdsbGate, GatedDemodStillDecodes) {
  // End-to-end: the candidate bitmap in front of the PPM demod must not
  // drop a decodable frame (bit-identity to the scalar first stage makes
  // this structural; this exercises it through the public API).
  namespace a = speccal::adsb;
  a::RawFrame frame{};
  // DF17 header + arbitrary payload, CRC patched to be valid.
  frame[0] = 17u << 3;
  for (std::size_t i = 1; i < 11; ++i) frame[i] = static_cast<std::uint8_t>(3 * i);
  a::attach_crc(frame);

  std::vector<d::Sample> samples(4 * a::kFrameSamples);
  auto noise = noise_block(samples.size(), 1234, 0.02f);
  for (std::size_t i = 0; i < samples.size(); ++i) samples[i] = noise[i];
  a::modulate_into(frame, 1.0, 0.3, 0.0, a::kFrameSamples / 2, samples);

  const a::PpmDemodulator demod;
  const auto detections = demod.process(samples);
  ASSERT_FALSE(detections.empty());
  EXPECT_EQ(detections[0].sample_index, a::kFrameSamples / 2);
  EXPECT_EQ(detections[0].frame, frame);
}
