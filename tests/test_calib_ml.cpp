// Tests: logistic-regression indoor/outdoor classifier (§5 ML direction)
// and cross-node mutual verification.
#include <gtest/gtest.h>

#include "calib/crosscheck.hpp"
#include "calib/ml.hpp"
#include "scenario/testbed.hpp"
#include "util/rng.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace g = speccal::geo;

namespace {

cal::CalibrationReport calibrate(sc::Site site, std::uint64_t seed) {
  const auto world = sc::make_world(seed);
  const auto setup = sc::make_site(site, seed);
  auto device = sc::make_node(setup, world, seed);
  cal::NodeClaims claims;
  claims.node_id = sc::site_name(site);
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  return cal::CalibrationPipeline(world, cfg).calibrate(*device, claims);
}

}  // namespace

TEST(MlFeatures, ExtractedAndBounded) {
  const auto report = calibrate(sc::Site::kWindow, 2023);
  const auto features = cal::MlFeatures::from_report(report);
  for (std::size_t k = 0; k < cal::MlFeatures::kCount; ++k) {
    EXPECT_GE(features.values[k], -1.0) << cal::MlFeatures::name(k);
    EXPECT_LE(features.values[k], 1.0) << cal::MlFeatures::name(k);
  }
  // The window site: narrow FoV, some mid-band attenuation.
  EXPECT_LT(features.values[0], 0.3);
  EXPECT_GT(features.values[3], 0.2);
}

TEST(MlClassifier, LearnsLinearlySeparableToy) {
  // Feature 0 alone decides the label.
  std::vector<cal::MlFeatures> examples;
  std::vector<bool> labels;
  speccal::util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    cal::MlFeatures f;
    const bool indoor = rng.chance(0.5);
    f.values[0] = indoor ? rng.uniform(0.0, 0.3) : rng.uniform(0.6, 1.0);
    for (std::size_t k = 1; k < cal::MlFeatures::kCount; ++k)
      f.values[k] = rng.uniform(0.0, 1.0);
    examples.push_back(f);
    labels.push_back(indoor);
  }
  cal::IndoorClassifier clf;
  const double loss = clf.train(examples, labels);
  EXPECT_LT(loss, 0.2);
  int correct = 0;
  for (std::size_t i = 0; i < examples.size(); ++i)
    correct += clf.predict_indoor(examples[i]) == labels[i];
  EXPECT_GT(correct, 190);
  // The decisive feature carries a strongly negative weight (low open
  // fraction => indoor).
  EXPECT_LT(clf.weights()[0], -1.0);
}

TEST(MlClassifier, TrainOnSimulatedFleetGeneralizes) {
  // Train on sites from 6 seeds, test on 3 held-out seeds.
  std::vector<cal::MlFeatures> train_x;
  std::vector<bool> train_y;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    for (auto site : {sc::Site::kRooftop, sc::Site::kWindow, sc::Site::kIndoor}) {
      train_x.push_back(cal::MlFeatures::from_report(calibrate(site, seed)));
      train_y.push_back(site != sc::Site::kRooftop);  // indoor label
    }
  }
  cal::IndoorClassifier clf;
  clf.train(train_x, train_y);

  int correct = 0, total = 0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    for (auto site : {sc::Site::kRooftop, sc::Site::kWindow, sc::Site::kIndoor}) {
      const bool want = site != sc::Site::kRooftop;
      const auto features = cal::MlFeatures::from_report(calibrate(site, seed));
      correct += clf.predict_indoor(features) == want;
      ++total;
    }
  }
  EXPECT_GE(correct, total - 1);  // at most one miss on 9 held-out sites
}

TEST(MlClassifier, RejectsBadDatasets) {
  cal::IndoorClassifier clf;
  std::vector<cal::MlFeatures> x(3);
  std::vector<bool> y(2);
  EXPECT_THROW(clf.train(x, y), std::invalid_argument);
  EXPECT_THROW(clf.train({}, {}), std::invalid_argument);
}

// ------------------------------------------------------------ cross-check ----

namespace {
cal::NodeSurvey make_node_survey(const std::string& id,
                                 const std::vector<std::tuple<std::uint32_t, double,
                                                              double, bool>>& obs,
                                 g::SectorSet fov) {
  cal::NodeSurvey node;
  node.node_id = id;
  node.fov.open_sectors = std::move(fov);
  for (const auto& [icao, az, range, received] : obs) {
    cal::AirplaneObservation o;
    o.icao = icao;
    o.azimuth_deg = az;
    o.range_km = range;
    o.received = received;
    node.survey.observations.push_back(o);
  }
  return node;
}
}  // namespace

TEST(CrossCheck, ConsistentNodesNotSuspicious) {
  const g::SectorSet all({{0.0, 0.0}});
  const auto a = make_node_survey("a", {{1, 90, 50, true}, {2, 180, 60, true}}, all);
  const auto b = make_node_survey("b", {{1, 90, 50, true}, {2, 180, 60, true}}, all);
  const auto report = cal::cross_check({a, b});
  for (const auto& n : report.nodes) {
    EXPECT_DOUBLE_EQ(n.suspicion, 0.0);
    EXPECT_FALSE(n.outlier);
  }
  EXPECT_TRUE(report.unconfirmed_icaos.empty());
}

TEST(CrossCheck, BlindNodeFlagged) {
  const g::SectorSet all({{0.0, 0.0}});
  // Node "bad" claims a full FoV yet misses everything its peers decode.
  std::vector<std::tuple<std::uint32_t, double, double, bool>> seen, missed;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    seen.push_back({i, i * 50.0, 40.0 + i * 5.0, true});
    missed.push_back({i, i * 50.0, 40.0 + i * 5.0, false});
  }
  const auto good1 = make_node_survey("good1", seen, all);
  const auto good2 = make_node_survey("good2", seen, all);
  const auto bad = make_node_survey("bad", missed, all);
  const auto report = cal::cross_check({good1, good2, bad});
  ASSERT_EQ(report.nodes.size(), 3u);
  EXPECT_FALSE(report.nodes[0].outlier);
  EXPECT_FALSE(report.nodes[1].outlier);
  EXPECT_TRUE(report.nodes[2].outlier);
  EXPECT_DOUBLE_EQ(report.nodes[2].suspicion, 1.0);
}

TEST(CrossCheck, ClosedSectorsAreNotEvidence) {
  // A node with an honestly-narrow FoV misses everything outside it; that
  // must not raise suspicion.
  const g::SectorSet all({{0.0, 0.0}});
  const g::SectorSet narrow({{80.0, 100.0}});
  std::vector<std::tuple<std::uint32_t, double, double, bool>> seen, partial;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const double az = i * 55.0;
    seen.push_back({i, az, 50.0, true});
    partial.push_back({i, az, 50.0, az >= 80.0 && az < 100.0});
  }
  const auto wide = make_node_survey("wide", seen, all);
  const auto honest_narrow = make_node_survey("narrow", partial, narrow);
  const auto report = cal::cross_check({wide, honest_narrow});
  EXPECT_FALSE(report.nodes[1].outlier);
  EXPECT_DOUBLE_EQ(report.nodes[1].suspicion, 0.0);
}

TEST(CrossCheck, NearFieldExcluded) {
  const g::SectorSet all({{0.0, 0.0}});
  // Misses at 10 km are inside the near-field gate: no evidence.
  const auto a = make_node_survey("a", {{1, 90, 10, true}}, all);
  const auto b = make_node_survey("b", {{1, 90, 10, false}}, all);
  const auto report = cal::cross_check({a, b});
  EXPECT_EQ(report.nodes[1].expected, 0u);
}

TEST(CrossCheck, UnconfirmedReceptionsListed) {
  const g::SectorSet all({{0.0, 0.0}});
  // Node "fab" decodes ICAO 99 that node "wit" has no ground-truth record
  // of at all -> unconfirmed.
  const auto fab = make_node_survey("fab", {{99, 120, 50, true}}, all);
  const auto wit = make_node_survey("wit", {{1, 90, 50, true}}, all);
  const auto report = cal::cross_check({fab, wit});
  ASSERT_EQ(report.unconfirmed_icaos.size(), 2u);  // 99 and 1 are both solo
}

TEST(CrossCheck, PipelineSurveysInteroperate) {
  // End-to-end: three real surveys over the same sky cross-check cleanly.
  const auto world = sc::make_world(2023);
  std::vector<cal::NodeSurvey> nodes;
  for (auto site : {sc::Site::kRooftop, sc::Site::kWindow, sc::Site::kIndoor}) {
    const auto setup = sc::make_site(site, 2023);
    auto device = sc::make_node(setup, world, 2023);
    speccal::airtraffic::GroundTruthService gt(*world.sky,
                                               world.ground_truth_latency_s);
    cal::SurveyConfig cfg;
    cfg.fidelity = cal::Fidelity::kLinkBudget;
    cal::NodeSurvey node;
    node.node_id = sc::site_name(site);
    node.survey = cal::AdsbSurvey(cfg).run(*device, *world.sky, gt);
    node.fov = cal::estimate_fov_knn(node.survey);
    nodes.push_back(std::move(node));
  }
  const auto report = cal::cross_check(nodes);
  ASSERT_EQ(report.nodes.size(), 3u);
  // Honest nodes surveying the same sky: nobody is an outlier.
  for (const auto& n : report.nodes) EXPECT_FALSE(n.outlier) << n.node_id;
}
