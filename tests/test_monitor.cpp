// Tests: Welch PSD, decimator, Goertzel, spectrum scanner, occupancy, REM.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/resampler.hpp"
#include "dsp/welch.hpp"
#include "monitor/occupancy.hpp"
#include "monitor/rem.hpp"
#include "calib/lo_calibration.hpp"
#include "monitor/scanner.hpp"
#include "prop/pathloss.hpp"
#include "tv/channels.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "util/rng.hpp"

namespace d = speccal::dsp;
namespace m = speccal::monitor;
namespace s = speccal::sdr;
namespace g = speccal::geo;
using speccal::util::Rng;

namespace {
std::vector<std::complex<float>> tone_plus_noise(double tone_hz, double fs,
                                                 std::size_t n, double tone_amp,
                                                 double noise_sigma,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<float>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * tone_hz * static_cast<double>(i) / fs;
    out[i] = {static_cast<float>(tone_amp * std::cos(ph) + rng.normal(0.0, noise_sigma)),
              static_cast<float>(tone_amp * std::sin(ph) + rng.normal(0.0, noise_sigma))};
  }
  return out;
}
}  // namespace

// ---------------------------------------------------------------- welch ----

TEST(Welch, TotalPowerMatchesTimeDomain) {
  Rng rng(3);
  std::vector<std::complex<float>> x(16384);
  double time_power = 0.0;
  for (auto& v : x) {
    v = {static_cast<float>(rng.normal(0.0, 0.1)),
         static_cast<float>(rng.normal(0.0, 0.1))};
    time_power += std::norm(v);
  }
  time_power /= static_cast<double>(x.size());
  const auto result = d::WelchEstimator{}.estimate(x, 1e6);
  double psd_power = 0.0;
  for (double v : result.psd) psd_power += v;
  EXPECT_NEAR(psd_power, time_power, time_power * 0.05);
  EXPECT_GT(result.segments_averaged, 20u);
}

TEST(Welch, ToneLandsInCorrectBin) {
  constexpr double fs = 1e6;
  const auto x = tone_plus_noise(200e3, fs, 8192, 0.5, 0.001, 4);
  const auto result = d::WelchEstimator{}.estimate(x, fs);
  std::size_t best = 0;
  for (std::size_t k = 1; k < result.psd.size(); ++k)
    if (result.psd[k] > result.psd[best]) best = k;
  EXPECT_EQ(best, d::bin_for_frequency(200e3, fs, result.psd.size()));
}

TEST(Welch, AveragingReducesVariance) {
  Rng rng(5);
  std::vector<std::complex<float>> x(65536);
  for (auto& v : x)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  d::WelchConfig one_seg;
  one_seg.segment_size = 1024;
  one_seg.overlap = 0.0;
  const auto many = d::WelchEstimator(one_seg).estimate(x, 1e6);
  // Per-bin relative std-dev after averaging ~64 segments: ~1/8.
  double mean = 0.0, var = 0.0;
  for (double v : many.psd) mean += v;
  mean /= static_cast<double>(many.psd.size());
  for (double v : many.psd) var += (v - mean) * (v - mean);
  var /= static_cast<double>(many.psd.size());
  EXPECT_LT(std::sqrt(var) / mean, 0.35);
}

TEST(Welch, ValidationAndEdgeCases) {
  std::vector<std::complex<float>> x(4096);
  d::WelchConfig bad;
  bad.segment_size = 1000;
  EXPECT_THROW(d::WelchEstimator{bad}, std::invalid_argument);
  bad.segment_size = 1024;
  bad.overlap = 1.5;
  EXPECT_THROW(d::WelchEstimator{bad}, std::invalid_argument);
  // Short block: empty result, no crash.
  std::vector<std::complex<float>> tiny(10);
  EXPECT_TRUE(d::WelchEstimator{}.estimate(tiny, 1e6).psd.empty());
}

TEST(Welch, BandPowerAndFloor) {
  constexpr double fs = 1e6;
  const auto x = tone_plus_noise(100e3, fs, 32768, 0.5, 0.002, 6);
  const auto result = d::WelchEstimator{}.estimate(x, fs);
  const double in_band = d::band_power(result, fs, 90e3, 110e3);
  const double out_band = d::band_power(result, fs, -300e3, -200e3);
  EXPECT_GT(in_band, 1000.0 * out_band);
  EXPECT_NEAR(in_band, 0.25, 0.05);  // tone power = amp^2
  // Median floor ignores the tone.
  EXPECT_LT(d::median_floor(result), 1e-5);
}

// ------------------------------------------------------------- decimator ----

TEST(Decimator, PreservesInBandTone) {
  constexpr double fs = 8e6;
  constexpr unsigned factor = 4;
  const auto x = tone_plus_noise(100e3, fs, 16384, 0.5, 0.0, 7);
  d::Decimator dec(factor, fs);
  const auto y = dec.decimate(x);
  EXPECT_NEAR(static_cast<double>(y.size()),
              static_cast<double>(x.size()) / factor, 2.0);
  EXPECT_DOUBLE_EQ(dec.output_rate_hz(), 2e6);
  // Tone power preserved (skip the filter transient).
  double power = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 200; i < y.size(); ++i) {
    power += std::norm(y[i]);
    ++counted;
  }
  EXPECT_NEAR(power / static_cast<double>(counted), 0.25, 0.03);
}

TEST(Decimator, SuppressesAliases) {
  constexpr double fs = 8e6;
  // A tone at 3 MHz would alias to -1 MHz after /4 if unfiltered.
  const auto x = tone_plus_noise(3e6, fs, 16384, 0.5, 0.0, 8);
  d::Decimator dec(4, fs);
  const auto y = dec.decimate(x);
  double power = 0.0;
  for (std::size_t i = 200; i < y.size(); ++i) power += std::norm(y[i]);
  power /= static_cast<double>(y.size() - 200);
  EXPECT_LT(power, 0.25 * 1e-3);  // > 30 dB alias suppression
}

TEST(Decimator, FactorOnePassthroughAndValidation) {
  EXPECT_THROW(d::Decimator(0, 1e6), std::invalid_argument);
  d::Decimator unity(1, 1e6);
  std::vector<std::complex<float>> x = {{1, 0}, {0, 1}, {-1, 0}};
  const auto y = unity.decimate(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0].real(), 1.0f, 1e-6);
}

// -------------------------------------------------------------- goertzel ----

TEST(Goertzel, MatchesToneAmplitude) {
  constexpr double fs = 2e6;
  const auto x = tone_plus_noise(309441.0, fs, 20000, 0.3, 0.001, 9);
  // Streaming multi-bin API: one pass over the block serves both bins.
  d::Goertzel probe({309441.0, -500e3}, fs);
  probe.feed(x);
  EXPECT_NEAR(probe.power(0), 0.09, 0.01);  // amp^2
  EXPECT_LT(probe.power(1), 1e-5);
  EXPECT_EQ(probe.samples_fed(), x.size());
  // reset() rewinds to a fresh accumulator; block-at-a-time feeding matches
  // one-shot feeding of the same samples.
  probe.reset();
  EXPECT_DOUBLE_EQ(probe.power(0), 0.0);
  probe.feed(std::span<const std::complex<float>>(x).first(7777));
  probe.feed(std::span<const std::complex<float>>(x).subspan(7777));
  EXPECT_NEAR(probe.power(0), 0.09, 0.01);
  // The free-function shim (DESIGN.md §8) stays as a thin wrapper.
  EXPECT_NEAR(d::goertzel_power(x, 309441.0, fs), 0.09, 0.01);
  EXPECT_LT(d::goertzel_power(x, -500e3, fs), 1e-5);
  EXPECT_DOUBLE_EQ(d::goertzel_power({}, 1.0, fs), 0.0);
}

// --------------------------------------------------------------- scanner ----

namespace {
struct ScannerFixture {
  s::RxEnvironment rx;
  std::unique_ptr<s::SimulatedSdr> device;

  ScannerFixture() {
    rx.position = {37.87, -122.27, 10.0};
    device = std::make_unique<s::SimulatedSdr>(s::SimulatedSdr::bladerf_like_info(),
                                               rx, Rng(21));
    // One strong emitter at 521 MHz.
    s::EmitterConfig cfg;
    cfg.emitter_id = 3;
    cfg.position = g::destination(rx.position, 90.0, 20e3);
    cfg.position.alt_m = 200.0;
    cfg.carrier_hz = 521e6;
    cfg.bandwidth_hz = 5.38e6;
    // Modest ERP so the capture stays well inside the ADC range at the
    // scanner's default gain (a full-power station this close would clip).
    cfg.eirp_dbm = 60.0;
    cfg.link.model = speccal::prop::PathModel::kFreeSpace;
    device->add_source(std::make_shared<s::FixedEmitterSource>(cfg, Rng(22)));
  }
};
}  // namespace

TEST(Scanner, SweepFindsTheEmitter) {
  ScannerFixture fix;
  const m::SpectrumScanner scanner;
  const auto sweep = scanner.sweep(*fix.device, 470e6, 600e6);
  ASSERT_GE(sweep.hops.size(), 15u);
  for (const auto& hop : sweep.hops) EXPECT_TRUE(hop.tune_ok);

  const double occupied = sweep.band_power_dbfs(518e6, 524e6);
  const double vacant = sweep.band_power_dbfs(560e6, 566e6);
  EXPECT_GT(occupied, vacant + 20.0);
  EXPECT_LT(sweep.overall_floor_dbfs(), -60.0);
  // Uncovered band reports the sentinel.
  EXPECT_DOUBLE_EQ(sweep.band_power_dbfs(900e6, 910e6), -200.0);
}

TEST(Scanner, UntunableHopsRecorded) {
  ScannerFixture fix;
  const m::SpectrumScanner scanner;
  // 50-80 MHz: below the device's 70 MHz floor for the first hops.
  const auto sweep = scanner.sweep(*fix.device, 50e6, 80e6);
  bool any_failed = false;
  for (const auto& hop : sweep.hops) any_failed |= !hop.tune_ok;
  EXPECT_TRUE(any_failed);
}

// ------------------------------------------------------------- occupancy ----

TEST(Occupancy, DetectsOccupiedChannel) {
  ScannerFixture fix;
  const m::SpectrumScanner scanner;
  const auto sweep = scanner.sweep(*fix.device, 470e6, 600e6);
  const std::vector<m::Channel> channels = {
      {"ch22", 518e6, 524e6},
      {"ch30", 566e6, 572e6},
  };
  const auto obs = m::detect_occupancy(sweep, channels);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_TRUE(obs[0].occupied);
  EXPECT_FALSE(obs[1].occupied);
  EXPECT_GT(obs[0].excess_db, 20.0);
  EXPECT_LT(std::fabs(obs[1].excess_db), 3.0);
}

TEST(Occupancy, TrackerAccumulatesDutyCycle) {
  ScannerFixture fix;
  const m::SpectrumScanner scanner;
  m::OccupancyTracker tracker({{"ch22", 518e6, 524e6}, {"ch30", 566e6, 572e6}});
  for (int i = 0; i < 3; ++i)
    tracker.ingest(scanner.sweep(*fix.device, 470e6, 600e6));
  EXPECT_EQ(tracker.sweeps(), 3u);
  EXPECT_DOUBLE_EQ(tracker.duty_cycle(0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.duty_cycle(1), 0.0);
  EXPECT_DOUBLE_EQ(tracker.duty_cycle(99), 0.0);  // out of range
}

// The autocorrelation estimator is the anomaly detector's second opinion
// (DESIGN.md §16): it must agree with the Welch energy-detect path on real
// captures, and it must not miss a signal the Welch path would flag.

TEST(Occupancy, AutocorrAgreesWithWelchAcrossTenSeeds) {
  const std::vector<m::Channel> channels = {
      {"ch22", 518e6, 524e6},  // carries the fixture's emitter
      {"ch30", 566e6, 572e6},  // vacant
  };
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    s::RxEnvironment rx;
    rx.position = {37.87, -122.27, 10.0};
    auto device = std::make_unique<s::SimulatedSdr>(
        s::SimulatedSdr::bladerf_like_info(), rx, Rng(100 + seed));
    s::EmitterConfig cfg;
    cfg.emitter_id = 3;
    cfg.position = g::destination(rx.position, 90.0, 20e3);
    cfg.position.alt_m = 200.0;
    cfg.carrier_hz = 521e6;
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = 60.0;
    cfg.link.model = speccal::prop::PathModel::kFreeSpace;
    device->add_source(std::make_shared<s::FixedEmitterSource>(cfg, Rng(200 + seed)));

    const auto sweep = m::SpectrumScanner{}.sweep(*device, 470e6, 600e6);
    const auto welch = m::detect_occupancy(sweep, channels);
    ASSERT_EQ(welch.size(), 2u);

    device->set_gain_mode(s::GainMode::kManual);
    device->set_gain_db(40.0);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      const double center = 0.5 * (channels[c].low_hz + channels[c].high_hz);
      ASSERT_TRUE(device->tune(center, 8e6)) << channels[c].label;
      const auto est = m::estimate_occupancy_autocorr(device->capture(16384));
      EXPECT_EQ(est.occupied, welch[c].occupied)
          << channels[c].label << " seed " << seed << " rho " << est.rho;
    }
  }
}

TEST(Occupancy, AutocorrRhoMatchesSignalClassOnCaptures) {
  // The rho magnitudes the anomaly detector's typing rules rely on: an ATSC
  // channel in an 8 Msps capture holds rho near sinc(pi*B/fs) ~ 0.4, a
  // vacant channel decorrelates to ~1/sqrt(N).
  s::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  auto device = std::make_unique<s::SimulatedSdr>(
      s::SimulatedSdr::bladerf_like_info(), rx, Rng(55));
  s::EmitterConfig cfg;
  cfg.emitter_id = 3;
  cfg.position = g::destination(rx.position, 90.0, 20e3);
  cfg.position.alt_m = 200.0;
  cfg.carrier_hz = 521e6;
  cfg.bandwidth_hz = 5.38e6;
  cfg.eirp_dbm = 60.0;
  cfg.link.model = speccal::prop::PathModel::kFreeSpace;
  device->add_source(std::make_shared<s::FixedEmitterSource>(cfg, Rng(56)));
  device->set_gain_mode(s::GainMode::kManual);
  device->set_gain_db(40.0);

  ASSERT_TRUE(device->tune(521e6, 8e6));
  const auto atsc = m::estimate_occupancy_autocorr(device->capture(16384));
  EXPECT_TRUE(atsc.occupied);
  EXPECT_GT(atsc.rho, 0.25);
  EXPECT_LT(atsc.rho, 0.7);

  ASSERT_TRUE(device->tune(569e6, 8e6));
  const auto vacant = m::estimate_occupancy_autocorr(device->capture(16384));
  EXPECT_FALSE(vacant.occupied);
  EXPECT_LT(vacant.rho, 0.05);
}

TEST(Occupancy, AutocorrNoFalseNegativesAtWelchThresholdSnr) {
  // At the SNR where the Welch path is right at its detection margin, the
  // autocorrelation path must still call the channel occupied — otherwise
  // the anomaly detector's cross-check would veto findings the PSD residual
  // legitimately raised. Ten seeded trials, zero misses allowed, plus zero
  // false alarms on the matching noise-only captures.
  const double snr_db = m::OccupancyConfig{}.detection_margin_db;
  const double snr = std::pow(10.0, snr_db / 10.0);
  constexpr std::size_t kN = 16384;
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(40 + static_cast<std::uint64_t>(trial));
    // Band-limited signal: 3-tap moving average of white noise (lag-1
    // rho = 2/3, bandwidth ~ fs/3) scaled to the threshold SNR over unit
    // white noise.
    std::vector<std::complex<double>> w(kN + 2);
    for (auto& v : w) v = {rng.normal(), rng.normal()};
    std::vector<std::complex<float>> occupied(kN), vacant(kN);
    const double a = std::sqrt(snr / 3.0);
    for (std::size_t i = 0; i < kN; ++i) {
      const auto sig = a * (w[i] + w[i + 1] + w[i + 2]);
      const std::complex<double> noise{rng.normal(), rng.normal()};
      occupied[i] = std::complex<float>(sig + noise);
      vacant[i] = std::complex<float>(std::complex<double>{rng.normal(), rng.normal()});
    }
    const auto hit = m::estimate_occupancy_autocorr(occupied);
    EXPECT_TRUE(hit.occupied) << "trial " << trial << " rho " << hit.rho;
    // Expected rho = (2/3) * snr/(snr+1); keep a wide deterministic margin.
    EXPECT_GT(hit.rho, 0.35) << "trial " << trial;
    const auto miss = m::estimate_occupancy_autocorr(vacant);
    EXPECT_FALSE(miss.occupied) << "trial " << trial << " rho " << miss.rho;
    EXPECT_LT(miss.rho, 0.05) << "trial " << trial;
  }
}

TEST(Occupancy, AutocorrEdgeCases) {
  // Short blocks and zero blocks report rho 0 / vacant rather than NaN.
  EXPECT_FALSE(m::estimate_occupancy_autocorr({}).occupied);
  std::vector<std::complex<float>> two(2, {1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(m::estimate_occupancy_autocorr(two).rho, 0.0);
  std::vector<std::complex<float>> zeros(1024, {0.0f, 0.0f});
  const auto est = m::estimate_occupancy_autocorr(zeros);
  EXPECT_DOUBLE_EQ(est.rho, 0.0);
  EXPECT_FALSE(est.occupied);
  // A pure CW capture pins rho to 1 (the spurious-emitter signature).
  std::vector<std::complex<float>> cw(4096);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    const double ph = 2.0 * std::numbers::pi * 0.073 * static_cast<double>(i);
    cw[i] = {static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph))};
  }
  EXPECT_GT(m::estimate_occupancy_autocorr(cw).rho, 0.99);
}

// ------------------------------------------------------------------ rem ----

TEST(Rem, TrustWeightedInterpolation) {
  m::RadioEnvironmentMap rem;
  const g::Geodetic origin{37.87, -122.27, 10.0};
  m::NodeObservation near_obs;
  near_obs.node_id = "near";
  near_obs.position = g::destination(origin, 90.0, 1000.0);
  near_obs.power_dbm = -60.0;
  near_obs.trust_weight = 1.0;
  m::NodeObservation far_obs = near_obs;
  far_obs.node_id = "far";
  far_obs.position = g::destination(origin, 90.0, 10e3);
  far_obs.power_dbm = -80.0;
  EXPECT_TRUE(rem.ingest(near_obs));
  EXPECT_TRUE(rem.ingest(far_obs));

  const auto est = rem.estimate(origin);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->contributors, 2u);
  // The near node dominates (IDW), so the estimate hugs -60.
  EXPECT_NEAR(est->power_dbm, -60.0, 2.0);
}

TEST(Rem, RejectsUntrustedAndUnusable) {
  m::RadioEnvironmentMap rem;
  m::NodeObservation bad;
  bad.node_id = "liar";
  bad.position = {37.87, -122.27, 10.0};
  bad.power_dbm = -30.0;
  bad.trust_weight = 0.1;  // below min_trust
  EXPECT_FALSE(rem.ingest(bad));
  bad.trust_weight = 0.9;
  bad.band_usable = false;  // calibration says this band is blind
  EXPECT_FALSE(rem.ingest(bad));
  EXPECT_EQ(rem.rejected(), 2u);
  EXPECT_EQ(rem.size(), 0u);
  EXPECT_FALSE(rem.estimate({37.87, -122.27, 10.0}).has_value());
}

TEST(Rem, RangeLimit) {
  m::RadioEnvironmentMap rem;
  m::NodeObservation obs;
  obs.node_id = "n";
  obs.position = {37.87, -122.27, 10.0};
  obs.power_dbm = -50.0;
  ASSERT_TRUE(rem.ingest(obs));
  const auto far_query =
      rem.estimate(speccal::geo::destination(obs.position, 0.0, 50e3));
  EXPECT_FALSE(far_query.has_value());  // beyond max_range_m
}

// --------------------------------------------------------- LO calibration ----

namespace {
std::unique_ptr<s::SimulatedSdr> lo_test_device(double ppm) {
  auto info = s::SimulatedSdr::bladerf_like_info();
  info.lo_error_ppm = ppm;
  s::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  auto device = std::make_unique<s::SimulatedSdr>(info, rx, Rng(31));
  // Two receivable ATSC stations.
  for (auto [id, ch] : {std::pair{1, 22}, std::pair{2, 14}}) {
    s::EmitterConfig cfg;
    cfg.emitter_id = static_cast<std::uint64_t>(id);
    cfg.position = g::destination(rx.position, 270.0, 25e3);
    cfg.position.alt_m = 250.0;
    cfg.carrier_hz = speccal::tv::channel_center_hz(ch).value();
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = 80.0;
    cfg.link.model = speccal::prop::PathModel::kTwoSlope;
    cfg.link.breakpoint_m = 10e3;
    cfg.pilot_offset_hz = speccal::tv::kPilotOffsetFromCenterHz;
    device->add_source(std::make_shared<s::FixedEmitterSource>(cfg, Rng(32 + id)));
  }
  return device;
}
}  // namespace

TEST(LoCalibration, RecoversReferenceError) {
  for (double true_ppm : {-8.0, -2.0, 0.0, 3.5, 12.0}) {
    auto device = lo_test_device(true_ppm);
    const auto result = speccal::calib::calibrate_lo(*device, {22, 14});
    ASSERT_TRUE(result.usable()) << true_ppm;
    EXPECT_EQ(result.valid_count, 2u) << true_ppm;
    EXPECT_NEAR(result.ppm, true_ppm, 0.5) << true_ppm;
  }
}

TEST(LoCalibration, VacantChannelsRejected) {
  auto device = lo_test_device(5.0);
  // Channel 30 carries no station: pilot SNR gate must reject it while the
  // real stations still measure.
  const auto result = speccal::calib::calibrate_lo(*device, {30, 22});
  ASSERT_EQ(result.pilots.size(), 2u);
  EXPECT_FALSE(result.pilots[0].valid);
  EXPECT_TRUE(result.pilots[1].valid);
  EXPECT_NEAR(result.ppm, 5.0, 0.5);
}

TEST(LoCalibration, NoStationsNoAnswer) {
  auto device = lo_test_device(5.0);
  const auto result = speccal::calib::calibrate_lo(*device, {30, 33});
  EXPECT_FALSE(result.usable());
  EXPECT_DOUBLE_EQ(result.ppm, 0.0);
}
