// Example: SAS-side verification of a CBRS device registration (§3.3).
//
// A CBSD self-reports its siting; a co-located calibrated spectrum sensor
// provides the evidence; the verifier decides what EIRP the SAS should
// grant. Run with the device's claimed parameters:
//
//   ./cbrs_verify [site] [indoor|outdoor] [A|B]
//
// e.g. `./cbrs_verify indoor outdoor A` = a device physically indoors
// claiming an outdoor Category A installation.
#include <iostream>
#include <string>

#include "cbrs/verify.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

int main(int argc, char** argv) {
  scenario::Site site = scenario::Site::kIndoor;
  bool claims_indoor = true;
  cbrs::Category category = cbrs::Category::kA;
  if (argc > 1) {
    const std::string s = argv[1];
    if (s == "rooftop") site = scenario::Site::kRooftop;
    else if (s == "window") site = scenario::Site::kWindow;
    else if (s != "indoor") {
      std::cerr << "usage: cbrs_verify [rooftop|window|indoor] [indoor|outdoor] [A|B]\n";
      return 2;
    }
  }
  if (argc > 2) claims_indoor = std::string(argv[2]) == "indoor";
  if (argc > 3 && std::string(argv[3]) == "B") category = cbrs::Category::kB;

  constexpr std::uint64_t kSeed = 29;
  const auto world = scenario::make_world(kSeed);
  const auto setup = scenario::make_site(site, kSeed);
  auto device = scenario::make_node(setup, world, kSeed);

  std::cout << "Calibrating the co-located sensor at the "
            << scenario::site_name(site) << " site...\n";
  calib::NodeClaims claims;
  claims.node_id = "cbsd-sensor";
  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
  const auto report =
      calib::CalibrationPipeline(world, cfg).calibrate(*device, claims);

  cbrs::CbsdRegistration reg;
  reg.cbsd_id = "CBSD-0001";
  reg.category = category;
  reg.reported_position = setup.position;
  reg.indoor_deployment = claims_indoor;
  reg.antenna_height_m = 4.0;
  reg.max_eirp_dbm = category == cbrs::Category::kB ? cbrs::kCatBMaxEirpDbm
                                                    : cbrs::kCatAMaxEirpDbm;

  const auto result = cbrs::CbsdVerifier{}.verify(reg, report);

  std::cout << "\nregistration : " << cbrs::to_string(category) << ", "
            << (claims_indoor ? "indoor" : "outdoor") << " deployment, "
            << reg.max_eirp_dbm << " dBm requested\n";
  std::cout << "evidence     : " << calib::to_string(report.classification.type)
            << " (confidence "
            << util::format_fixed(report.classification.confidence, 2) << ")\n";
  std::cout << "verdict      : " << cbrs::to_string(result.verdict) << "\n";
  std::cout << "EIRP grant   : ";
  if (result.recommended_eirp_dbm < -100.0)
    std::cout << "DENIED\n";
  else
    std::cout << util::format_fixed(result.recommended_eirp_dbm, 0)
              << " dBm / 10 MHz\n";
  std::cout << "findings:\n";
  for (const auto& f : result.findings)
    std::cout << "  [" << (f.violation ? "VIOLATION" : "info") << "] "
              << f.description << "\n";
  return 0;
}
