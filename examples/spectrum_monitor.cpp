// Example: the service a calibrated node actually sells (§2) — spectrum
// monitoring — and what calibration adds to it.
//
// Four nodes sweep the UHF TV band and report channel powers to a cloud
// radio-environment map: three honest nodes with modest claims, plus one
// operator who inflates every claim from a deep-indoor install (the paid
// crowd-sourcing failure mode the paper opens with). The map weights every
// observation by calibration trust, so the liar's siting-blinded readings
// are rejected; an ungated map averages them in and under-reports the true
// field strength.
#include <iostream>

#include "dsp/plan.hpp"
#include "monitor/occupancy.hpp"
#include "monitor/rem.hpp"
#include "monitor/scanner.hpp"
#include "scenario/testbed.hpp"
#include "tv/channels.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  constexpr std::uint64_t kSeed = 17;
  const auto world = scenario::make_world(kSeed);

  // Channels to watch: the testbed's six ATSC stations.
  std::vector<monitor::Channel> channels;
  for (int ch : scenario::figure4_channels()) {
    const double lo = tv::channel_lower_edge_hz(ch).value();
    channels.push_back({"ch" + std::to_string(ch), lo, lo + tv::kChannelWidthHz});
  }

  monitor::ScanConfig scan_cfg;
  scan_cfg.gain_db = 15.0;  // strong locals would clip at higher gain
  const monitor::SpectrumScanner scanner(scan_cfg);
  // Warm the shared plan cache once; every node's Welch PSD (and any other
  // transform of the same size, fleet-wide) reuses this table.
  (void)dsp::PlanCache::shared().plan_f32(scan_cfg.welch.segment_size);
  monitor::RemConfig gated_config;
  gated_config.min_trust = 0.5;              // calibration gate
  monitor::RadioEnvironmentMap gated_map(gated_config);
  monitor::RemConfig open_config;
  open_config.min_trust = 0.0;               // accepts anything
  monitor::RadioEnvironmentMap open_map(open_config);

  calib::PipelineConfig cal_cfg;
  cal_cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
  calib::CalibrationPipeline pipeline(world, cal_cfg);

  struct Member {
    const char* id;
    scenario::Site site;
    bool inflated_claims;
  };
  const Member fleet[] = {
      {"roof-1", scenario::Site::kRooftop, false},
      {"window-1", scenario::Site::kWindow, false},
      {"indoor-1", scenario::Site::kIndoor, false},
      {"indoor-liar", scenario::Site::kIndoor, true},
  };

  std::cout << "Sweeping 470-620 MHz at four nodes and feeding the REM...\n\n";
  util::Table table({"node", "trust", "ch22 power dBFS", "occupied channels"});
  for (const auto& member : fleet) {
    const auto setup = scenario::make_site(member.site, kSeed);
    auto device = scenario::make_node(setup, world, kSeed);

    // 1. Calibrate the node first.
    calib::NodeClaims claims;
    claims.node_id = member.id;
    claims.claims_outdoor = member.inflated_claims;
    claims.claims_omnidirectional = member.inflated_claims;
    const auto report = pipeline.calibrate(*device, claims);

    // 2. Sweep the band and detect occupancy.
    const auto sweep = scanner.sweep(*device, 470e6, 620e6);
    const auto occupancy = monitor::detect_occupancy(sweep, channels);
    std::string occupied;
    for (const auto& obs : occupancy)
      if (obs.occupied) occupied += obs.channel.label + " ";

    // 3. Report each channel to the map with calibration attached.
    bool low_usable = false;
    for (const auto& band : report.frequency_response.bands)
      if (band.band_class == cellular::SpectrumClass::kLowBand)
        low_usable = band.usable;
    for (const auto& obs : occupancy) {
      if (obs.channel.label != "ch22") continue;  // the maps track channel 22
      monitor::NodeObservation node_obs;
      node_obs.node_id = member.id;
      node_obs.position = setup.position;
      node_obs.channel_low_hz = obs.channel.low_hz;
      node_obs.channel_high_hz = obs.channel.high_hz;
      // dBFS -> dBm at the port.
      node_obs.power_dbm = obs.power_dbfs - scanner.config().gain_db +
                           device->info().full_scale_input_dbm;
      node_obs.trust_weight = report.trust.score / 100.0;
      node_obs.band_usable = low_usable;
      (void)low_usable;
      gated_map.ingest(node_obs);
      monitor::NodeObservation ungated = node_obs;
      ungated.band_usable = true;
      ungated.trust_weight = 1.0;
      open_map.ingest(ungated);
    }

    double ch22 = -200.0;
    for (const auto& obs : occupancy)
      if (obs.channel.label == "ch22") ch22 = obs.power_dbfs;
    table.add_row({member.id, util::format_fixed(report.trust.score, 0),
                   util::format_fixed(ch22, 1), occupied.empty() ? "-" : occupied});
  }
  table.print(std::cout);

  const geo::Geodetic query = scenario::testbed_origin();
  std::cout << "\nREM estimate for channel 22 at the testbed origin:\n";
  std::cout << "  calibration-gated map: ";
  if (const auto est = gated_map.estimate(query))
    std::cout << util::format_fixed(est->power_dbm, 1) << " dBm from "
              << est->contributors << " nodes\n";
  else
    std::cout << "(no admissible observations)\n";
  std::cout << "  ungated map          : ";
  if (const auto est = open_map.estimate(query))
    std::cout << util::format_fixed(est->power_dbm, 1) << " dBm from "
              << est->contributors << " nodes\n";
  else
    std::cout << "(no observations)\n";
  std::cout << "  observations rejected by gating: " << gated_map.rejected() << "\n";
  std::cout << "\nThe gated map leans on well-sited, trusted nodes; the ungated\n"
               "map averages in siting-attenuated readings and under-reports\n"
               "the true field strength.\n";

  const auto plan_stats = dsp::PlanCache::shared().stats();
  std::cout << "\nFFT plan cache: " << plan_stats.plans << " plans built once, "
            << plan_stats.hits << " reuses across the four nodes' sweeps.\n";
  return 0;
}
