// Quickstart: calibrate one sensor node end-to-end.
//
// Builds the paper's testbed world (simulated sky, cell towers, TV
// stations), places a node behind a window, runs the full calibration
// pipeline — ADS-B survey, cellular scan, TV sweep, classification, trust —
// and prints the report (plus its JSON form).
//
// Run: ./quickstart [site]   where site = rooftop | window | indoor
#include <iostream>
#include <string>

#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

int main(int argc, char** argv) {
  scenario::Site site = scenario::Site::kWindow;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "rooftop") site = scenario::Site::kRooftop;
    else if (arg == "indoor") site = scenario::Site::kIndoor;
    else if (arg != "window") {
      std::cerr << "usage: quickstart [rooftop|window|indoor]\n";
      return 2;
    }
  }

  constexpr std::uint64_t kSeed = 2023;
  std::cout << "Building world (sky + towers + TV stations)...\n";
  const calib::WorldModel world = scenario::make_world(kSeed);
  const scenario::SiteSetup setup = scenario::make_site(site, kSeed);
  auto device = scenario::make_node(setup, world, kSeed);

  calib::NodeClaims claims;
  claims.node_id = scenario::site_name(site);
  claims.min_freq_hz = 100e6;
  claims.max_freq_hz = 6e9;
  claims.claims_outdoor = true;          // the operator *claims* a clear view...
  claims.claims_omnidirectional = true;  // ...let the calibration check it

  calib::PipelineConfig config;
  config.survey.duration_s = 30.0;  // the paper's measurement window
  calib::CalibrationPipeline pipeline(world, config);

  std::cout << "Calibrating node '" << claims.node_id << "' (30 s ADS-B survey, "
            << "5-tower cell scan, 6-channel TV sweep)...\n\n";
  const calib::CalibrationReport report = pipeline.calibrate(*device, claims);

  std::cout << "ADS-B: " << report.survey.received_count() << "/"
            << report.survey.observations.size()
            << " ground-truth aircraft received ("
            << report.survey.total_frames_decoded << " frames, "
            << report.survey.frames_crc_repaired << " CRC-repaired)\n";
  std::cout << "Field of view: " << report.fov.open_sectors.to_string() << " ("
            << static_cast<int>(report.fov.open_fraction_deg * 100.0)
            << "% of horizon open)\n\n";

  util::Table cells({"tower", "band", "freq MHz", "RSRP dBm", "decoded"});
  for (const auto& m : report.cell_scan)
    cells.add_row({m.cell.operator_name + " #" + std::to_string(m.cell.cell_id),
                   "B" + std::to_string(m.cell.band),
                   util::format_fixed(m.cell.dl_freq_hz / 1e6, 0),
                   m.decoded ? util::format_fixed(m.rsrp_dbm, 1) : "-",
                   m.decoded ? "yes" : "NO"});
  cells.set_title("Cellular scan");
  cells.print(std::cout);

  util::Table tv({"channel", "freq MHz", "power dBFS"});
  for (const auto& r : report.tv_readings)
    tv.add_row({std::to_string(r.rf_channel),
                util::format_fixed(r.center_hz / 1e6, 0),
                util::format_fixed(r.power_dbfs, 1)});
  tv.set_title("\nBroadcast TV sweep");
  tv.print(std::cout);

  std::cout << "\nClassification: " << calib::to_string(report.classification.type)
            << " (confidence " << util::format_fixed(report.classification.confidence, 2)
            << ")\n";
  for (const auto& reason : report.classification.rationale)
    std::cout << "  - " << reason << "\n";

  std::cout << "\nTrust score: " << util::format_fixed(report.trust.score, 0) << "/100\n";
  for (const auto& f : report.trust.findings)
    std::cout << "  ["
              << (f.severity == calib::Severity::kViolation
                      ? "VIOLATION"
                      : f.severity == calib::Severity::kWarning ? "warning" : "info")
              << "] " << f.description << "\n";

  std::cout << "\nJSON report:\n";
  report.write_json(std::cout);
  std::cout << "\n";
  return 0;
}
