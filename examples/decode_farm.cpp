// Example: the Electrosense+ split, end to end — a fleet of cheap sensors
// encodes its IQ into wire segments, a bounded queue plays transport, and
// the backend decode farm reconstructs every stream and calibrates it with
// the ordinary fleet engine.
//
// Two calibration runs happen: the producer fleet calibrates in-process
// while its devices record themselves onto the wire (SegmentizingDevice is
// a transparent decorator), then the farm replays the decoded streams
// through the same pipeline. With --encoding=float32 the two reports must
// match byte for byte (stage wall-clock timings excluded) — the binary
// exits 2 on any mismatch, which is the round-trip gate CI runs. Lossy
// encodings skip the gate and report the per-node trust-score deltas
// instead, showing what 2-4x wire compression costs in calibration terms.
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "calib/fleet.hpp"
#include "net/decode_farm.hpp"
#include "net/queue.hpp"
#include "scenario/testbed.hpp"
#include "sdr/segmentize.hpp"
#include "sdr/sim.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

constexpr std::uint64_t kSeed = 29;

struct Options {
  std::size_t nodes = 20;
  net::Encoding encoding = net::Encoding::kFloat32;
  unsigned decode_threads = 2;
  unsigned calibrate_threads = 2;
  std::size_t queue_capacity = 0;  // 0 = sized to hold the whole stream
};

bool parse_encoding(const std::string& name, net::Encoding& out) {
  if (name == "float32") out = net::Encoding::kFloat32;
  else if (name == "float16") out = net::Encoding::kFloat16;
  else if (name == "fixed8") out = net::Encoding::kFixed8;
  else if (name == "fixed12") out = net::Encoding::kFixed12;
  else return false;
  return true;
}

/// Deterministic measurement content of a report (timings excluded).
std::string report_fingerprint(const calib::CalibrationReport& report) {
  std::ostringstream os;
  report.write_json(os, /*include_stage_metrics=*/false);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) {
      opt.nodes = std::stoul(arg.substr(8));
    } else if (arg.rfind("--encoding=", 0) == 0) {
      if (!parse_encoding(arg.substr(11), opt.encoding)) {
        std::cerr << "unknown encoding (float32|float16|fixed8|fixed12)\n";
        return 1;
      }
    } else if (arg.rfind("--decode-threads=", 0) == 0) {
      opt.decode_threads = static_cast<unsigned>(std::stoul(arg.substr(17)));
    } else if (arg.rfind("--calibrate-threads=", 0) == 0) {
      opt.calibrate_threads = static_cast<unsigned>(std::stoul(arg.substr(20)));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      opt.queue_capacity = std::stoul(arg.substr(17));
    } else {
      std::cerr << "usage: decode_farm [--nodes=N] [--encoding=E]\n"
                   "                   [--decode-threads=N] [--calibrate-threads=N]\n"
                   "                   [--queue-capacity=N]\n";
      return 1;
    }
  }

  const auto world = scenario::make_world(kSeed);
  calib::RunConfig run;
  run.pipeline.survey.fidelity = calib::Fidelity::kLinkBudget;
  run.pipeline.survey.duration_s = 10.0;
  run.executor.threads = opt.calibrate_threads;

  // In this demo the whole stream is buffered before the farm drains it
  // (a live deployment would run producers and farm concurrently), so the
  // default queue capacity must hold every segment or pushes would block
  // with nobody popping.
  const std::size_t capacity =
      opt.queue_capacity ? opt.queue_capacity : opt.nodes * 4096;
  net::SegmentQueue queue(capacity);

  std::cout << "decode_farm: " << opt.nodes << " nodes, encoding "
            << net::to_string(opt.encoding) << ", queue capacity " << capacity
            << "\n";

  // Site models shared by producer devices and replay manifests; must
  // outlive both calibration runs.
  std::vector<scenario::SiteSetup> sites;
  for (std::size_t i = 0; i < opt.nodes; ++i)
    sites.push_back(
        scenario::make_site(static_cast<scenario::Site>(i % 3), kSeed));

  // --- producer fleet: calibrate in-process, recording onto the wire -----
  calib::NodeRegistry baseline;
  {
    calib::FleetCalibrator producer(world, run);
    std::vector<calib::FleetJob> jobs;
    for (std::size_t i = 0; i < opt.nodes; ++i) {
      const auto site = static_cast<scenario::Site>(i % 3);
      calib::FleetJob job;
      job.claims.node_id = "node-" + std::to_string(i);
      job.claims.claims_outdoor = site != scenario::Site::kIndoor;
      job.claims.claims_omnidirectional = false;
      job.make_device = [&world, &queue, &opt, site, i] {
        net::SegmentWriterConfig wcfg;
        wcfg.encoding = opt.encoding;
        return std::make_unique<sdr::SegmentizingDevice>(
            scenario::make_owned_node(site, world, kSeed), wcfg,
            static_cast<std::uint32_t>(i),
            [&queue](net::Segment&& s) { queue.push(std::move(s)); });
      };
      jobs.push_back(std::move(job));
    }
    const auto summary = producer.run(std::move(jobs), baseline);
    std::cout << "producer fleet: " << summary.calibrated << " calibrated, "
              << summary.failed << " failed, " << queue.size()
              << " segments on the wire\n";
    if (summary.failed != 0) return 1;
  }
  queue.close();

  // --- backend: decode farm over the recorded wire stream ----------------
  net::DecodeFarm farm(world, run,
                       net::DecodeFarmConfig{opt.decode_threads});
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto site = static_cast<scenario::Site>(i % 3);
    net::NodeManifest manifest;
    manifest.claims.node_id = "node-" + std::to_string(i);
    manifest.claims.claims_outdoor = site != scenario::Site::kIndoor;
    manifest.claims.claims_omnidirectional = false;
    manifest.info = sdr::SimulatedSdr::bladerf_like_info();
    manifest.position = sites[i].position;
    manifest.rx = sites[i].rx_environment();
    farm.register_node(static_cast<std::uint32_t>(i), manifest);
  }

  calib::NodeRegistry decoded;
  const auto stats = farm.run(queue, decoded);

  util::Table table({"metric", "value"});
  table.add_row({"segments decoded", std::to_string(stats.segments)});
  table.add_row({"wire MB", std::to_string(stats.bytes / 1000000)});
  table.add_row({"captures reassembled", std::to_string(stats.captures)});
  table.add_row({"decode errors", std::to_string(stats.decode_errors)});
  table.add_row({"decode wall s", std::to_string(stats.decode_wall_s)});
  table.add_row({"decode MB/s", std::to_string(stats.mbytes_per_s)});
  table.add_row({"nodes calibrated", std::to_string(stats.nodes_calibrated)});
  table.add_row({"nodes incomplete", std::to_string(stats.nodes_incomplete)});
  table.add_row({"quarantined", std::to_string(stats.faults.quarantined)});
  table.print(std::cout);

  if (stats.nodes_calibrated != opt.nodes || stats.decode_errors != 0) {
    std::cerr << "decode_farm: FAIL — not every node made it through the "
                 "farm\n";
    return 2;
  }

  if (opt.encoding == net::Encoding::kFloat32) {
    // The round-trip gate: float32 is lossless, so the farm's reports must
    // be byte-identical to the producer's own.
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < opt.nodes; ++i) {
      const std::string id = "node-" + std::to_string(i);
      const auto* a = baseline.find(id);
      const auto* b = decoded.find(id);
      if (!a || !b || report_fingerprint(*a) != report_fingerprint(*b)) {
        std::cerr << "MISMATCH: " << id << "\n";
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::cerr << "decode_farm: FAIL — " << mismatches << " of " << opt.nodes
                << " round-trip reports differ from the in-process run\n";
      return 2;
    }
    std::cout << "round-trip gate: all " << opt.nodes
              << " float32 reports bitwise-identical to the in-process run\n";
  } else {
    // Lossy encodings: show what the compression cost in trust terms.
    util::Table deltas({"node", "trust in-process", "trust round-trip", "delta"});
    double worst = 0.0;
    for (std::size_t i = 0; i < opt.nodes; ++i) {
      const std::string id = "node-" + std::to_string(i);
      const auto* a = baseline.find(id);
      const auto* b = decoded.find(id);
      if (!a || !b) continue;
      const double delta = b->trust.score - a->trust.score;
      worst = std::max(worst, std::abs(delta));
      deltas.add_row({id, std::to_string(a->trust.score),
                      std::to_string(b->trust.score), std::to_string(delta)});
    }
    deltas.print(std::cout);
    std::cout << net::to_string(opt.encoding)
              << ": worst trust-score delta " << worst << " ("
              << net::bytes_per_sample(opt.encoding)
              << " B/sample vs 8 B/sample on the wire)\n";
  }
  return 0;
}
