// Example: run the receiver as a dump1090-style feed.
//
// Surveys the simulated sky for a few seconds and emits every decoded
// frame in both interchange formats — raw AVR ("*8D...;") and SBS-1 /
// BaseStation CSV — exactly what downstream aggregators ingest from a real
// dump1090. Demonstrates the io layer and that the decoder state (resolved
// positions, callsigns) enriches the SBS stream. Finally replays its own
// AVR output through from_avr() to show loss-free round-tripping.
//
// Run: ./adsb_feed [seconds]
#include <cstdlib>
#include <iostream>

#include "adsb/altitude.hpp"
#include "adsb/decoder.hpp"
#include "adsb/io.hpp"
#include "airtraffic/adsb_source.hpp"
#include "scenario/testbed.hpp"

using namespace speccal;

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 3.0;
  constexpr std::uint64_t kSeed = 23;

  const auto world = scenario::make_world(kSeed, 25);
  const auto setup = scenario::make_site(scenario::Site::kRooftop, kSeed);
  auto device = scenario::make_node(setup, world, kSeed);
  device->set_gain_mode(sdr::GainMode::kManual);
  device->set_gain_db(40.0);
  device->tune(adsb::kAdsbFreqHz, adsb::kPpmSampleRateHz);

  adsb::Decoder decoder;
  std::cout << "# AVR + SBS-1 feed, " << duration_s << " s of simulated sky\n";

  const auto chunk = static_cast<std::size_t>(adsb::kPpmSampleRateHz / 10);
  const auto chunks = static_cast<std::size_t>(duration_s * 10);
  for (std::size_t i = 0; i < chunks; ++i) {
    const double t = device->stream_time_s();
    const auto buf = device->capture(chunk);
    for (const auto& frame : decoder.feed(buf, t)) {
      const auto* track = decoder.find(frame.icao);
      std::cout << adsb::to_sbs(frame, track, t) << "\n";
    }
  }

  // Emit the raw frames of everything we still track as AVR, then replay.
  std::cout << "\n# AVR replay check\n";
  std::size_t replayed = 0;
  for (const auto& ac : decoder.aircraft()) {
    if (!ac.position) continue;
    const auto frame = adsb::build_position_frame(
        ac.icao, ac.position->lat_deg, ac.position->lon_deg,
        adsb::m_to_feet(ac.position->alt_m), false);
    const std::string line = adsb::to_avr(frame);
    const auto parsed = adsb::from_avr(line);
    if (parsed && std::holds_alternative<adsb::RawFrame>(*parsed) &&
        std::get<adsb::RawFrame>(*parsed) == frame)
      ++replayed;
    std::cout << line << "\n";
  }
  std::cout << "# " << replayed << " AVR lines round-tripped losslessly; "
            << decoder.aircraft().size() << " aircraft tracked, "
            << decoder.total_frames() << " frames decoded\n";
  return 0;
}
