// Example: audit a crowd-sourced fleet — the paper's end vision (§2):
// "node operators offer spectrum sensing as a service and users pay to
//  rent these services ... how can users trust the quality of data offered
//  by each operator?"
//
// Builds a fleet of nodes with varied siting and varied honesty, calibrates
// every one through the pipeline, and prints the marketplace view: trust
// ranking, verified capabilities, and which nodes can serve a concrete
// monitoring request (mid-band, toward the west).
#include <iostream>
#include <vector>

#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

struct FleetEntry {
  std::string id;
  scenario::Site site;
  bool claims_outdoor;
  bool claims_omni;
  double claimed_max_ghz;
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 13;
  const auto world = scenario::make_world(kSeed);

  const std::vector<FleetEntry> fleet = {
      {"alice-roof", scenario::Site::kRooftop, true, false, 6.0},
      {"bob-roof-bold", scenario::Site::kRooftop, true, true, 6.0},
      {"carol-window", scenario::Site::kWindow, false, false, 3.0},
      {"dave-window-liar", scenario::Site::kWindow, true, true, 6.0},
      {"erin-indoor", scenario::Site::kIndoor, false, false, 1.0},
      {"frank-indoor-liar", scenario::Site::kIndoor, true, true, 6.0},
  };

  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;  // fleet-scale sweep
  calib::CalibrationPipeline pipeline(world, cfg);
  calib::NodeRegistry registry;

  std::cout << "Calibrating a fleet of " << fleet.size() << " nodes...\n";
  for (const auto& entry : fleet) {
    const auto setup = scenario::make_site(entry.site, kSeed);
    auto device = scenario::make_node(setup, world, kSeed);
    calib::NodeClaims claims;
    claims.node_id = entry.id;
    claims.min_freq_hz = 100e6;
    claims.max_freq_hz = entry.claimed_max_ghz * 1e9;
    claims.claims_outdoor = entry.claims_outdoor;
    claims.claims_omnidirectional = entry.claims_omni;
    registry.record(pipeline.calibrate(*device, claims));
  }

  util::Table table({"rank", "node", "trust", "verified siting", "FoV open %",
                     "violations"});
  int rank = 1;
  for (const auto& id : registry.ranked_by_trust()) {
    const auto* report = registry.find(id);
    table.add_row({std::to_string(rank++), id,
                   util::format_fixed(report->trust.score, 0),
                   calib::to_string(report->classification.type),
                   std::to_string(
                       static_cast<int>(report->fov.open_fraction_deg * 100.0)),
                   std::to_string(report->trust.violations())});
  }
  table.set_title("Marketplace trust ranking");
  table.print(std::cout);

  std::cout << "\nRequest: monitor 2145 MHz (AWS-1) toward azimuth 280\n";
  const auto capable = registry.usable_for(2145e6, 280.0);
  if (capable.empty()) {
    std::cout << "  no verified node can serve this request\n";
  } else {
    for (const auto& id : capable) std::cout << "  -> " << id << "\n";
  }

  std::cout << "\nRequest: monitor 550 MHz broadcast band (any direction)\n";
  for (const auto& id : registry.usable_for(550e6, std::nullopt))
    std::cout << "  -> " << id << "\n";

  std::cout << "\nViolation details for flagged operators:\n";
  for (const auto& id : registry.ranked_by_trust()) {
    const auto* report = registry.find(id);
    if (report->trust.violations() == 0) continue;
    std::cout << "  " << id << ":\n";
    for (const auto& f : report->trust.findings)
      if (f.severity == calib::Severity::kViolation)
        std::cout << "    - " << f.description << "\n";
  }
  return 0;
}
