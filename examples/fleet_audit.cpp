// Example: audit a crowd-sourced fleet — the paper's end vision (§2):
// "node operators offer spectrum sensing as a service and users pay to
//  rent these services ... how can users trust the quality of data offered
//  by each operator?"
//
// Builds a fleet (default 20 nodes; --nodes=1000 for a scale run) with
// varied siting and varied honesty and pushes it through the stage-graph
// FleetCalibrator (serial fallback: threads=1).
// Each worker constructs its own seeded device, so the trust scores are
// bitwise-identical no matter how many threads run. Prints the marketplace
// view — trust ranking, verified capabilities, who can serve a concrete
// monitoring request — plus the fleet-wide stage-timing percentiles from
// the pipeline's instrumentation layer.
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <vector>

#include "calib/anomaly.hpp"
#include "calib/fleet.hpp"
#include "calib/health.hpp"
#include "obs/eventlog.hpp"
#include "scenario/adversary.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "scenario/testbed.hpp"
#include "sdr/fault.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

struct FleetEntry {
  std::string id;
  scenario::Site site;
  bool claims_outdoor;
  bool claims_omni;
  double claimed_max_ghz;
};

/// ~20 operators: honest rooftops, modest window sites, indoor nodes, and a
/// sprinkling of liars who oversell their siting or frequency range.
std::vector<FleetEntry> generate_fleet(std::size_t count) {
  const char* names[] = {"alice", "bob",  "carol", "dave", "erin",  "frank",
                         "grace", "henry", "iris",  "jack", "karen", "leo",
                         "mona",  "nick",  "olive", "pete", "quinn", "rosa",
                         "sam",   "tess",  "uma",   "vic"};
  std::vector<FleetEntry> fleet;
  for (std::size_t i = 0; i < count; ++i) {
    FleetEntry entry;
    const auto site = static_cast<scenario::Site>(i % 3);
    const bool liar = i % 4 == 3;  // every fourth operator oversells
    entry.site = site;
    entry.id = std::string(names[i % std::size(names)]) + "-" +
               scenario::site_name(site) + (liar ? "-liar" : "");
    // Beyond one pass over the names array the (name, site) pair repeats;
    // append the index so registry keys stay unique at 1000-node scale.
    if (i >= std::size(names)) entry.id += "-" + std::to_string(i);
    switch (site) {
      case scenario::Site::kRooftop:
        entry.claims_outdoor = true;
        entry.claims_omni = liar;  // rooftop is open west only
        entry.claimed_max_ghz = 6.0;
        break;
      case scenario::Site::kWindow:
        entry.claims_outdoor = liar;
        entry.claims_omni = liar;
        entry.claimed_max_ghz = liar ? 6.0 : 3.0;
        break;
      case scenario::Site::kIndoor:
        entry.claims_outdoor = liar;
        entry.claims_omni = liar;
        entry.claimed_max_ghz = liar ? 6.0 : 1.0;
        break;
    }
    fleet.push_back(std::move(entry));
  }
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint64_t kSeed = 13;

  // fleet_audit [threads] [--threads=N] [--nodes=N] [--metrics-out=PATH]
  //             [--trace-out=PATH] [--fault-profile=<name|json>]
  //             [--anomaly-profile=<name|json>] [--anomaly-out=PATH]
  //             [--health-out=PATH] [--events-out=PATH] [--samples-out=PATH]
  //             [--slo-budget-ms=MS]
  // Fault profiles script a reproducible chaos run: built-ins "none",
  // "flaky20", "chaos", or an inline JSON document (sdr/fault.hpp). With a
  // profile active the retry/quarantine policy is enabled and the run
  // self-checks its quarantine count against the profile's expectation.
  // Anomaly profiles script RF-level adversaries onto victim nodes
  // (scenario/adversary.hpp): the run arms the pipeline's anomaly-scan
  // watchlist, evaluates the fleet-consensus detector
  // (calib/anomaly.hpp), prints the worst offenders, and self-checks that
  // every scripted node — and only those — was flagged. --anomaly-out
  // writes the findings JSON (and by itself arms detection on a clean
  // fleet, which must produce zero findings).
  // --health-out scores every node (calib/health.hpp), prints the worst-N
  // table and writes the health JSON; --events-out dumps the structured
  // event journal as JSON-lines; --samples-out records a registry delta
  // time-series ticked on the progress heartbeat; --slo-budget-ms arms the
  // same latency budget for every pipeline stage.
  unsigned threads = 0;
  std::size_t fleet_size = 20;
  std::string metrics_out;
  std::string trace_out;
  std::string health_out;
  std::string events_out;
  std::string samples_out;
  double slo_budget_ms = 0.0;
  std::string anomaly_out;
  sdr::FaultProfile fault_profile;
  scenario::AdversaryProfile anomaly_profile;
  bool anomaly_armed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0)
      threads = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    else if (arg.rfind("--nodes=", 0) == 0)
      fleet_size = static_cast<std::size_t>(std::atoll(arg.c_str() + 8));
    else if (arg.rfind("--metrics-out=", 0) == 0)
      metrics_out = arg.substr(14);
    else if (arg.rfind("--trace-out=", 0) == 0)
      trace_out = arg.substr(12);
    else if (arg.rfind("--health-out=", 0) == 0)
      health_out = arg.substr(13);
    else if (arg.rfind("--events-out=", 0) == 0)
      events_out = arg.substr(13);
    else if (arg.rfind("--samples-out=", 0) == 0)
      samples_out = arg.substr(14);
    else if (arg.rfind("--slo-budget-ms=", 0) == 0)
      slo_budget_ms = std::atof(arg.c_str() + 16);
    else if (arg.rfind("--anomaly-out=", 0) == 0) {
      anomaly_out = arg.substr(14);
      anomaly_armed = true;
    } else if (arg.rfind("--anomaly-profile=", 0) == 0) {
      try {
        anomaly_profile = scenario::make_adversary_profile(arg.substr(18));
        anomaly_armed = true;
      } catch (const std::exception& e) {
        std::cerr << "fleet_audit: " << e.what() << "\n";
        return 2;
      }
    } else if (arg.rfind("--fault-profile=", 0) == 0) {
      try {
        fault_profile = sdr::make_fault_profile(arg.substr(16));
      } catch (const std::exception& e) {
        std::cerr << "fleet_audit: " << e.what() << "\n";
        return 2;
      }
    } else if (arg.rfind("--", 0) != 0)
      threads = static_cast<unsigned>(std::atoi(arg.c_str()));
    else {
      std::cerr << "fleet_audit: unknown flag " << arg << "\n";
      return 2;
    }
  }
  const bool chaos = !fault_profile.empty();

  // One trace session per audit run: every node becomes a nested span tree
  // (node -> stages) on its worker's track in chrome://tracing / Perfetto.
  std::optional<speccal::obs::TraceSession> trace;
  if (!trace_out.empty()) trace.emplace();

  // Arm the same latency budget on every pipeline stage; StageTimer feeds
  // the tracker on each stage completion.
  if (slo_budget_ms > 0.0)
    for (std::size_t s = 0; s < calib::kStageCount; ++s)
      obs::SloTracker::global().set_budget(
          calib::to_string(static_cast<calib::Stage>(s)), slo_budget_ms);

  // Rolling registry snapshots, ticked on the progress heartbeat below.
  std::optional<obs::Sampler> sampler;
  if (!samples_out.empty()) sampler.emplace(obs::Registry::global());

  const auto world = scenario::make_world(kSeed);
  const auto fleet = generate_fleet(fleet_size);

  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;  // fleet-scale sweep
  if (anomaly_armed) {
    // Arm the anomaly-scan stage: every node captures the standard
    // watchlist (1090ES + the five downlink centres) after its normal
    // stages, giving the detector bands the model-level survey never
    // touches at RF.
    cfg.anomaly_scan.enabled = true;
    cfg.anomaly_scan.bands = scenario::standard_watchlist();
    std::cout << "Anomaly profile '" << anomaly_profile.name << "': "
              << anomaly_profile.nodes.size() << " scripted victim(s), "
              << cfg.anomaly_scan.bands.size() << " watch band(s)\n";
  }
  if (chaos) {
    cfg.retry.max_attempts = fault_profile.retry_max_attempts;
    cfg.retry.initial_backoff_s = fault_profile.initial_backoff_s;
    cfg.retry.stage_deadline_s = fault_profile.stage_deadline_s;
    cfg.retry.quarantine = true;
    std::cout << "Fault profile '" << fault_profile.name << "': "
              << fault_profile.nodes.size() << " scripted node(s), retry x"
              << cfg.retry.max_attempts << ", expected quarantines "
              << fault_profile.expected_quarantined_nodes << "\n";
  }

  calib::RunConfig run;
  run.pipeline = cfg;
  run.executor.threads = threads;
  calib::FleetConfig fleet_cfg;
  fleet_cfg.trace = trace ? &*trace : nullptr;
  fleet_cfg.on_progress = [&metrics_out, &sampler](const calib::FleetProgress& p) {
    // Per-node lines for small fleets; at 1000-node scale print a heartbeat
    // every 100 nodes (plus aborts/quarantines, which are always notable).
    const bool verbose = p.total <= 50;
    if (verbose || !p.ok || p.quarantined || p.completed % 100 == 0 ||
        p.completed == p.total)
      std::cout << "  [" << p.completed << "/" << p.total << "] " << p.node_id
                << (p.ok ? "" : "  (ABORTED)")
                << (p.quarantined ? "  (QUARANTINED)" : "") << "\n";
    // Heartbeat flush: a killed long run still leaves a current metrics file
    // and sampler timeline behind. on_progress runs under the fleet's
    // bookkeeping lock, so the rewrite is serialized.
    if (p.completed % 100 == 0 && p.completed < p.total) {
      if (sampler) sampler->sample();
      if (!metrics_out.empty()) {
        std::ofstream os(metrics_out);
        if (os) obs::Registry::global().write_json(os);
      }
    }
  };
  calib::FleetCalibrator calibrator(world, run, fleet_cfg);

  std::cout << "Calibrating a fleet of " << fleet.size() << " nodes on "
            << calibrator.effective_threads(fleet.size()) << " thread(s)...\n";

  std::vector<calib::FleetJob> jobs;
  for (std::size_t index = 0; index < fleet.size(); ++index) {
    const auto& entry = fleet[index];
    calib::FleetJob job;
    job.claims.node_id = entry.id;
    job.claims.min_freq_hz = 100e6;
    job.claims.max_freq_hz = entry.claimed_max_ghz * 1e9;
    job.claims.claims_outdoor = entry.claims_outdoor;
    job.claims.claims_omnidirectional = entry.claims_omni;
    // Each node's device is created on the worker that calibrates it, from
    // the shared scenario seed only — no shared mutable state. The anomaly
    // profile attaches scripted adversary RF sources to victim nodes'
    // front ends, then the fault profile wraps scripted nodes in a seeded
    // FaultInjectingDevice; unscripted nodes get the bare device
    // (bitwise-identical reports).
    job.make_device = [&world, &fault_profile, &anomaly_profile,
                       site = entry.site, index, id = entry.id]() {
      return fault_profile.wrap(
          scenario::make_owned_node(site, world, kSeed,
                                    anomaly_profile.sources_for(index)),
          index, id);
    };
    jobs.push_back(std::move(job));
  }

  calib::NodeRegistry registry;
  const calib::FleetSummary summary = calibrator.run(std::move(jobs), registry);

  std::cout << "\nBatch: " << summary.calibrated << "/" << summary.total
            << " calibrated (" << summary.failed << " aborted, "
            << summary.faults.quarantined << " quarantined, "
            << summary.faults.recovered << " recovered, " << summary.skipped << " skipped) in "
            << util::format_fixed(summary.wall_s, 2) << " s — "
            << util::format_fixed(summary.nodes_per_s, 2) << " nodes/s\n";

  util::Table table({"rank", "node", "trust", "verified siting", "FoV open %",
                     "violations"});
  constexpr std::size_t kMaxTrustRows = 25;
  const auto ranked = registry.ranked_by_trust();
  int rank = 1;
  for (const auto& id : ranked) {
    if (static_cast<std::size_t>(rank) > kMaxTrustRows) break;
    const auto* report = registry.find(id);
    table.add_row({std::to_string(rank++), id,
                   util::format_fixed(report->trust.score, 0),
                   calib::to_string(report->classification.type),
                   std::to_string(
                       static_cast<int>(report->fov.open_fraction_deg * 100.0)),
                   std::to_string(report->trust.violations())});
  }
  table.set_title(ranked.size() > kMaxTrustRows
                      ? "Marketplace trust ranking (top " +
                            std::to_string(kMaxTrustRows) + " of " +
                            std::to_string(ranked.size()) + ")"
                      : "Marketplace trust ranking");
  table.print(std::cout);

  util::Table stages({"stage", "nodes", "p50 ms", "p90 ms", "max ms",
                      "samples", "frames"});
  for (const auto& row : summary.stage_stats.rows)
    stages.add_row({calib::to_string(row.stage), std::to_string(row.nodes),
                    util::format_fixed(row.p50_ms, 2),
                    util::format_fixed(row.p90_ms, 2),
                    util::format_fixed(row.max_ms, 2),
                    std::to_string(row.samples_captured),
                    std::to_string(row.frames_decoded)});
  stages.set_title("Fleet-wide stage timing");
  stages.print(std::cout);

  const auto print_capped = [&](const std::vector<std::string>& ids) {
    constexpr std::size_t kMaxListed = 25;
    std::size_t shown = 0;
    for (const auto& id : ids) {
      if (shown++ == kMaxListed) {
        std::cout << "  ... and " << ids.size() - kMaxListed << " more\n";
        break;
      }
      std::cout << "  -> " << id << "\n";
    }
  };

  std::cout << "\nRequest: monitor 2145 MHz (AWS-1) toward azimuth 280\n";
  const auto capable = registry.usable_for(2145e6, 280.0);
  if (capable.empty()) {
    std::cout << "  no verified node can serve this request\n";
  } else {
    print_capped(capable);
  }

  std::cout << "\nRequest: monitor 550 MHz broadcast band (any direction)\n";
  print_capped(registry.usable_for(550e6, std::nullopt));

  if (fleet.size() <= 50) {
    std::cout << "\nViolation details for flagged operators:\n";
    registry.for_each_report([](const calib::CalibrationReport& report) {
      if (report.trust.violations() == 0) return;
      std::cout << "  " << report.claims.node_id << ":\n";
      for (const auto& f : report.trust.findings)
        if (f.severity == calib::Severity::kViolation)
          std::cout << "    - " << f.description << "\n";
    });
  }

  if (chaos) {
    std::cout << "\nFault records:\n";
    registry.for_each_report([](const calib::CalibrationReport& report) {
      for (const auto& fr : report.fault_records)
        std::cout << "  " << report.claims.node_id << ": stage "
                  << calib::to_string(fr.stage) << " -> "
                  << calib::to_string(fr.outcome) << " after " << fr.attempts
                  << " attempt(s)"
                  << (fr.last_error.empty() ? "" : " — " + fr.last_error)
                  << "\n";
    });
  }

  // Fleet health: fault history + consensus divergence folded into one
  // score per node, published as gauges (so --metrics-out carries them),
  // merged into flagged reports' findings, and rendered worst-first.
  if (!health_out.empty()) {
    const calib::HealthMonitor monitor;
    const calib::HealthReport health = monitor.evaluate(registry);
    monitor.publish(health, obs::Registry::global());
    monitor.annotate(registry, health);

    constexpr std::size_t kMaxHealthRows = 10;
    util::Table worst({"rank", "node", "score", "quarantined", "recovered",
                       "crc repair %", "divergence dB", "flag"});
    std::size_t shown = 0;
    for (const auto& n : health.nodes) {
      if (shown++ == kMaxHealthRows) break;
      worst.add_row({std::to_string(shown), n.node_id,
                     util::format_fixed(n.score, 1),
                     std::to_string(n.quarantined_stages),
                     std::to_string(n.recovered_stages),
                     util::format_fixed(n.crc_repair_rate * 100.0, 2),
                     util::format_fixed(n.divergence_db, 2),
                     n.unhealthy ? "UNHEALTHY" : "ok"});
    }
    worst.set_title(health.nodes.size() > kMaxHealthRows
                        ? "Fleet health, worst " +
                              std::to_string(kMaxHealthRows) + " of " +
                              std::to_string(health.nodes.size())
                        : "Fleet health (worst first)");
    std::cout << "\n";
    worst.print(std::cout);

    std::ofstream os(health_out);
    if (!os) {
      std::cerr << "fleet_audit: cannot write " << health_out << "\n";
      return 1;
    }
    health.write_json(os);
    std::cout << "Wrote health scores for " << health.nodes.size()
              << " node(s) to " << health_out << " ("
              << health.unhealthy_count << " unhealthy)\n";
  }

  // Fleet-consensus anomaly detection: every node's TV sweep + watchlist
  // against its neighbor-weighted consensus, typed findings merged into
  // flagged reports, speccal_anomaly_* published (so --metrics-out carries
  // them), worst offenders rendered.
  std::optional<calib::AnomalyReport> anomalies;
  if (anomaly_armed) {
    const calib::AnomalyDetector detector;
    anomalies = detector.evaluate(registry);
    detector.publish(*anomalies, obs::Registry::global());
    detector.annotate(registry, *anomalies);

    constexpr std::size_t kMaxAnomalyRows = 10;
    util::Table offenders(
        {"rank", "node", "kind", "bands", "residual dB", "rho"});
    std::size_t shown = 0;
    for (const auto& f : anomalies->findings) {
      if (shown++ == kMaxAnomalyRows) break;
      std::string bands;
      for (std::size_t b = 0; b < f.bands.size(); ++b)
        bands += (b == 0 ? "" : " ") + f.bands[b];
      offenders.add_row({std::to_string(shown), f.node_id,
                         calib::to_string(f.kind), bands,
                         util::format_fixed(f.worst_residual_db, 1),
                         util::format_fixed(f.max_rho, 2)});
    }
    offenders.set_title(
        anomalies->findings.size() > kMaxAnomalyRows
            ? "RF anomalies, worst " + std::to_string(kMaxAnomalyRows) +
                  " of " + std::to_string(anomalies->findings.size())
            : "RF anomalies (worst first)");
    std::cout << "\n";
    offenders.print(std::cout);
    std::cout << "Anomaly sweep: " << anomalies->flagged_nodes << "/"
              << anomalies->nodes_evaluated << " node(s) flagged over "
              << anomalies->bands_evaluated << " band(s)"
              << (anomalies->geo_weighted ? " (geo-weighted consensus)" : "")
              << "\n";

    if (!anomaly_out.empty()) {
      std::ofstream os(anomaly_out);
      if (!os) {
        std::cerr << "fleet_audit: cannot write " << anomaly_out << "\n";
        return 1;
      }
      anomalies->write_json(os);
      std::cout << "Wrote " << anomalies->findings.size()
                << " anomaly finding(s) to " << anomaly_out << "\n";
    }
  }

  if (trace) {
    std::ofstream os(trace_out);
    if (!os) {
      std::cerr << "fleet_audit: cannot write " << trace_out << "\n";
      return 1;
    }
    trace->write_chrome_trace(os);
    std::cout << "\nWrote " << trace->event_count() << " trace events to "
              << trace_out << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!events_out.empty()) {
    std::ofstream os(events_out);
    if (!os) {
      std::cerr << "fleet_audit: cannot write " << events_out << "\n";
      return 1;
    }
    const auto& journal = obs::EventLog::global();
    journal.write_jsonl(os);
    std::cout << "Wrote " << journal.size() << " journal event(s) to "
              << events_out
              << (journal.dropped() > 0
                      ? " (" + std::to_string(journal.dropped()) +
                            " dropped by the ring bound)"
                      : "")
              << "\n";
  }
  if (sampler) {
    sampler->sample();  // final frame so short runs still record a timeline
    std::ofstream os(samples_out);
    if (!os) {
      std::cerr << "fleet_audit: cannot write " << samples_out << "\n";
      return 1;
    }
    sampler->write_json(os);
    std::cout << "Wrote " << sampler->frame_count() << " sampler frame(s) to "
              << samples_out << "\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::cerr << "fleet_audit: cannot write " << metrics_out << "\n";
      return 1;
    }
    obs::Registry::global().write_json(os);
    std::cout << "Wrote " << obs::Registry::global().size() << " metrics to "
              << metrics_out << "\n";
  }

  // Chaos self-check (after the metrics file is written, so a failing run
  // still leaves its evidence behind for CI to inspect).
  if (chaos) {
    if (summary.failed != 0) {
      std::cerr << "fleet_audit: chaos run aborted " << summary.failed
                << " node(s); quarantine should have contained them\n";
      return 3;
    }
    if (summary.faults.quarantined != fault_profile.expected_quarantined_nodes) {
      std::cerr << "fleet_audit: profile '" << fault_profile.name
                << "' expected " << fault_profile.expected_quarantined_nodes
                << " quarantined node(s), got " << summary.faults.quarantined << "\n";
      return 3;
    }
    std::cout << "\nChaos self-check OK: " << summary.faults.quarantined
              << " quarantined node(s) as scripted\n";
  }

  // Anomaly self-check (also after the metrics/findings files, so a failed
  // run leaves its evidence behind): every scripted victim must be flagged
  // (100% recall) and nothing else may be (zero false positives).
  if (anomalies) {
    std::set<std::string> expected;
    for (const auto& node : anomaly_profile.nodes) {
      if (node.index < fleet.size()) {
        expected.insert(fleet[node.index].id);
      } else {
        std::cerr << "fleet_audit: anomaly profile scripts node index "
                  << node.index << " but the fleet has only " << fleet.size()
                  << " node(s)\n";
        return 2;
      }
    }
    bool ok = true;
    for (const auto& id : expected)
      if (!anomalies->flagged(id)) {
        std::cerr << "fleet_audit: scripted victim " << id
                  << " was not flagged (missed detection)\n";
        ok = false;
      }
    for (const auto& f : anomalies->findings)
      if (expected.find(f.node_id) == expected.end()) {
        std::cerr << "fleet_audit: clean node " << f.node_id
                  << " was flagged as " << calib::to_string(f.kind)
                  << " (false positive)\n";
        ok = false;
      }
    if (!ok) return 4;
    std::cout << "Anomaly self-check OK: " << expected.size()
              << " scripted victim(s) flagged, no false positives\n";
  }
  return 0;
}
