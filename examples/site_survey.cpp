// Example: full multi-band site survey — what a prospective sensor-node
// operator would run before listing a node on the marketplace.
//
// Sweeps all three signal sources (ADS-B, cellular, broadcast TV) at a
// chosen site, prints the per-band attenuation picture, and answers the
// §3.2 question directly: "which frequency bands can this node actually
// monitor, and from which directions?"
//
// Run: ./site_survey [rooftop|window|indoor]
#include <iostream>
#include <string>

#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

int main(int argc, char** argv) {
  scenario::Site site = scenario::Site::kRooftop;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "window") site = scenario::Site::kWindow;
    else if (arg == "indoor") site = scenario::Site::kIndoor;
    else if (arg != "rooftop") {
      std::cerr << "usage: site_survey [rooftop|window|indoor]\n";
      return 2;
    }
  }

  constexpr std::uint64_t kSeed = 11;
  const auto world = scenario::make_world(kSeed);
  const auto setup = scenario::make_site(site, kSeed);
  auto device = scenario::make_node(setup, world, kSeed);

  calib::NodeClaims claims;
  claims.node_id = scenario::site_name(site);
  claims.min_freq_hz = 100e6;
  claims.max_freq_hz = 6e9;

  calib::PipelineConfig cfg;
  cfg.survey.duration_s = 15.0;
  cfg.survey.ground_truth_query_at_s = 7.5;
  // TV power via the plan-based spectral path: Welch PSD + band integration,
  // Parseval-equivalent to the paper's time-domain moving average, reusing
  // the process-wide cached FFT plan for every channel.
  cfg.tv_meter.method = tv::PowerMeterConfig::Method::kSpectral;
  calib::CalibrationPipeline pipeline(world, cfg);

  std::cout << "Running full site survey at '" << claims.node_id
            << "' (TV power: plan-based Welch integration)...\n\n";
  const auto report = pipeline.calibrate(*device, claims);

  // Per-source view: expectation vs measurement, the §3.2 core table.
  util::Table sources({"source", "freq MHz", "azimuth", "expected dBm",
                       "measured dBm", "attenuation dB"});
  for (const auto& m : report.frequency_response.measurements) {
    sources.add_row({
        m.source_label,
        util::format_fixed(m.freq_hz / 1e6, 0),
        util::format_fixed(m.azimuth_deg, 0),
        util::format_fixed(m.expected_dbm, 1),
        m.measured_dbm ? util::format_fixed(*m.measured_dbm, 1) : "LOST",
        m.measured_dbm ? util::format_fixed(m.expected_dbm - *m.measured_dbm, 1)
                       : ">" + util::format_fixed(35.0, 0),
    });
  }
  sources.set_title("Known-signal measurements vs clear-sky expectation");
  sources.print(std::cout);

  util::Table bands({"band class", "sources", "received", "mean atten dB",
                     "usable for monitoring"});
  for (const auto& b : report.frequency_response.bands) {
    bands.add_row({cellular::to_string(b.band_class),
                   std::to_string(b.sources_total),
                   std::to_string(b.sources_received),
                   util::format_fixed(b.mean_attenuation_db, 1),
                   b.usable ? "yes" : "NO"});
  }
  bands.set_title("\nPer-band verdict");
  bands.print(std::cout);

  std::cout << "\nfield of view        : " << report.fov.open_sectors.to_string()
            << " (" << static_cast<int>(report.fov.open_fraction_deg * 100.0)
            << "% open)\n";
  std::cout << "attenuation slope    : "
            << util::format_fixed(
                   report.frequency_response.attenuation_slope_db_per_decade, 1)
            << " dB/decade (positive = indoor signature)\n";
  std::cout << "installation verdict : "
            << calib::to_string(report.classification.type) << " (confidence "
            << util::format_fixed(report.classification.confidence, 2) << ")\n";
  for (const auto& reason : report.classification.rationale)
    std::cout << "   - " << reason << "\n";

  std::cout << "\nhardware diagnosis   : "
            << (report.hardware.healthy() ? "healthy" : "FAULT SUSPECTED") << "\n";
  for (const auto& note : report.hardware.notes) std::cout << "   - " << note << "\n";
  std::cout << "reference oscillator : ";
  if (report.lo_calibration.usable())
    std::cout << util::format_fixed(report.lo_calibration.ppm, 2) << " ppm (from "
              << report.lo_calibration.valid_count << " TV pilots)\n";
  else
    std::cout << "no receivable pilot to calibrate against\n";
  return 0;
}
