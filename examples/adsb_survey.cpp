// Example: run just the ADS-B directional survey (the paper's §3.1
// procedure) and inspect it aircraft by aircraft — the programmatic
// equivalent of watching dump1090 + FlightRadar24 side by side.
//
// Run: ./adsb_survey [seconds] [aircraft]     (defaults: 30 s, 70 aircraft)
#include <cstdlib>
#include <iostream>

#include "calib/fov.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 30.0;
  const std::size_t aircraft = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 70;
  if (duration_s <= 0.0) {
    std::cerr << "usage: adsb_survey [seconds] [aircraft]\n";
    return 2;
  }

  constexpr std::uint64_t kSeed = 7;
  const auto world = scenario::make_world(kSeed, aircraft);
  const auto setup = scenario::make_site(scenario::Site::kRooftop, kSeed);
  auto device = scenario::make_node(setup, world, kSeed);
  airtraffic::GroundTruthService ground_truth(*world.sky,
                                              world.ground_truth_latency_s);

  calib::SurveyConfig cfg;
  cfg.duration_s = duration_s;
  cfg.ground_truth_query_at_s = duration_s / 2.0;
  std::cout << "Surveying 1090 MHz for " << duration_s << " s over a sky of "
            << aircraft << " aircraft (rooftop site)...\n";
  const auto result = calib::AdsbSurvey(cfg).run(*device, *world.sky, ground_truth);

  util::Table table({"icao", "callsign", "azimuth", "range km", "status",
                     "msgs", "best RSSI dBFS", "decode err m"});
  for (const auto& obs : result.observations) {
    std::string decode_err = "-";
    if (obs.decoded_position)
      decode_err = util::format_fixed(
          geo::haversine_m(obs.position, *obs.decoded_position), 0);
    char icao_hex[16];
    std::snprintf(icao_hex, sizeof icao_hex, "%06X", obs.icao);
    table.add_row({icao_hex, obs.callsign,
                   util::format_fixed(obs.azimuth_deg, 0),
                   util::format_fixed(obs.range_km, 1),
                   obs.received ? "RECEIVED" : "missed",
                   std::to_string(obs.messages),
                   obs.received ? util::format_fixed(obs.best_rssi_dbfs, 1) : "-",
                   decode_err});
  }
  table.set_title("Ground truth vs reception (paper Figure 1, one site)");
  table.print(std::cout);

  std::cout << "\nreceived " << result.received_count() << "/"
            << result.observations.size() << " aircraft, "
            << result.total_frames_decoded << " frames ("
            << result.frames_crc_repaired << " CRC-repaired), "
            << result.unmatched_receptions << " unmatched receptions\n";

  const auto fov = calib::estimate_fov_knn(result);
  std::cout << "estimated field of view: " << fov.open_sectors.to_string()
            << "  (true: "
            << setup.obstructions->clear_sectors(1090e6).to_string() << ")\n";
  return 0;
}
