// Experiment 10 — §5 "Establishing trust": cross-node mutual verification.
//
// Five nodes survey the same sky. Four are honest (varied siting); one
// "saboteur" drops half of the aircraft it should have decoded (a broken
// or deliberately-throttled receiver whose claims still look plausible in
// isolation). Pairwise corroboration exposes it.
#include <iostream>

#include "calib/crosscheck.hpp"
#include "scenario/testbed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 10: cross-node mutual verification (shared sky)\n";
  std::cout << "==========================================================\n";
  const auto world = scenario::make_world(2023);
  airtraffic::GroundTruthService gt(*world.sky, world.ground_truth_latency_s);

  calib::SurveyConfig survey_cfg;
  survey_cfg.fidelity = calib::Fidelity::kLinkBudget;

  std::vector<calib::NodeSurvey> nodes;
  auto add_node = [&](const std::string& id, scenario::Site site,
                      std::uint64_t node_seed, bool sabotage) {
    const auto setup = scenario::make_site(site, node_seed);
    auto device = scenario::make_node(setup, world, node_seed);
    calib::NodeSurvey node;
    node.node_id = id;
    node.survey = calib::AdsbSurvey(survey_cfg).run(*device, *world.sky, gt);
    // The FoV a node is *paid for* is its advertised capability — estimated
    // at enrollment, before any later degradation or throttling. Using the
    // post-hoc estimate would let a saboteur shrink its claims to match its
    // own silence.
    node.fov = calib::estimate_fov_knn(node.survey);
    if (sabotage) {
      // Drop most receptions afterwards: the receiver "works", but the
      // operator withholds data (or the install silently degraded).
      util::Rng rng(99);
      for (auto& obs : node.survey.observations)
        if (obs.received && rng.chance(0.6)) {
          obs.received = false;
          obs.messages = 0;
        }
    }
    nodes.push_back(std::move(node));
  };

  add_node("roof-a", scenario::Site::kRooftop, 31, false);
  add_node("roof-b", scenario::Site::kRooftop, 32, false);
  add_node("window-a", scenario::Site::kWindow, 33, false);
  add_node("indoor-a", scenario::Site::kIndoor, 34, false);
  add_node("roof-sabotaged", scenario::Site::kRooftop, 35, true);

  const auto report = calib::cross_check(nodes);

  util::Table table({"node", "expected", "missed", "suspicion", "verdict"});
  for (const auto& n : report.nodes)
    table.add_row({n.node_id, std::to_string(n.expected), std::to_string(n.missed),
                   util::format_fixed(n.suspicion, 2),
                   n.outlier ? "OUTLIER" : "consistent"});
  table.set_title("Peer-corroborated reception consistency");
  table.print(std::cout);

  std::cout << "unconfirmed solo receptions: " << report.unconfirmed_icaos.size()
            << "\n";

  std::cout << "\nReading: honest nodes — including the narrow-view window and\n"
               "indoor nodes, whose misses lie outside their own claimed FoV —\n"
               "score near zero suspicion; the sabotaged rooftop node misses\n"
               "about half of what its peers corroborate inside its claimed\n"
               "field of view and is flagged.\n";
  return 0;
}
