// Experiment 7 — §5 "End-to-end system": measurement scheduling.
//
// "An end-to-end system must decide when to perform ADS-B measurements to
//  gain as much information as possible, as flight schedules vary over
//  time."
//
// Feeds the greedy scheduler a realistic diurnal traffic profile and prints
// the chosen windows, the coverage each adds, and a comparison against a
// naive every-other-hour schedule with the same measurement budget. Then
// validates the analytic coverage model against the sky simulator.
#include <iostream>

#include "calib/window_planner.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

std::vector<calib::TrafficForecast> diurnal_profile() {
  // Flights/hour near a metro airport: overnight trickle, two banks.
  std::vector<calib::TrafficForecast> out;
  const double rates[24] = {4,  3,  2,  2,  3,  8,  25, 55, 70, 60, 45, 40,
                            42, 48, 50, 55, 75, 85, 80, 60, 40, 25, 12, 6};
  for (int h = 0; h < 24; ++h) out.push_back({static_cast<double>(h), rates[h]});
  return out;
}

double naive_coverage(const std::vector<calib::TrafficForecast>& profile,
                      std::size_t budget, const calib::ScheduleConfig& cfg) {
  // Every floor(24/budget) hours, regardless of traffic.
  double miss = 1.0;
  const std::size_t stride = profile.size() / budget;
  for (std::size_t i = 0; i < budget; ++i) {
    const auto& f = profile[(i * stride) % profile.size()];
    const double aircraft =
        f.flights_per_hour * (cfg.window_s / 3600.0) + f.flights_per_hour * 0.2;
    miss *= 1.0 - calib::expected_sector_coverage(aircraft, cfg.azimuth_sectors);
  }
  return 1.0 - miss;
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 7: when to measure — greedy scheduling vs naive\n";
  std::cout << "==========================================================\n";
  const auto profile = diurnal_profile();

  calib::ScheduleConfig cfg;
  cfg.max_windows = 6;
  cfg.min_marginal_gain = 0.0;
  const auto schedule = calib::WindowPlanner(cfg).plan(profile);

  util::Table table({"hour", "exp. aircraft", "new coverage", "plot"});
  for (const auto& w : schedule.windows)
    table.add_row({util::format_fixed(w.hour_of_day, 0),
                   util::format_fixed(w.expected_aircraft, 1),
                   util::format_fixed(w.expected_new_coverage, 3),
                   util::ascii_bar(w.expected_new_coverage, 0.0, 1.0, 30)});
  table.set_title("Greedy schedule (6 windows of 30 s)");
  table.print(std::cout);
  std::cout << "expected horizon coverage (greedy): "
            << util::format_fixed(schedule.expected_total_coverage, 3) << "\n";

  for (std::size_t budget : {2u, 4u, 6u, 12u}) {
    calib::ScheduleConfig c = cfg;
    c.max_windows = budget;
    const auto s = calib::WindowPlanner(c).plan(profile);
    std::cout << "budget " << budget << " windows: greedy "
              << util::format_fixed(s.expected_total_coverage, 3) << " vs naive "
              << util::format_fixed(naive_coverage(profile, budget, c), 3) << "\n";
  }

  // Validate the coverage model against the sky simulator: how many of the
  // 36 azimuth sectors does a real simulated sky of N aircraft touch?
  std::cout << "\ncoverage-model validation (analytic vs simulated sky):\n";
  for (std::size_t aircraft : {5u, 15u, 40u, 90u}) {
    double simulated = 0.0;
    constexpr int kRepeats = 10;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const auto sky = scenario::make_sky(900 + static_cast<std::uint64_t>(rep),
                                          aircraft);
      std::array<bool, 36> touched{};
      for (const auto& at : sky->snapshot(0.0)) {
        const double az = geo::bearing_deg(scenario::testbed_origin(), at.position);
        touched[static_cast<std::size_t>(az / 10.0) % 36] = true;
      }
      int count = 0;
      for (bool t : touched) count += t ? 1 : 0;
      simulated += count / 36.0;
    }
    simulated /= kRepeats;
    std::cout << "  " << aircraft << " aircraft: analytic "
              << util::format_fixed(
                     calib::expected_sector_coverage(
                         static_cast<double>(aircraft), 36), 3)
              << " vs simulated " << util::format_fixed(simulated, 3) << "\n";
  }

  std::cout << "\nReading: concentrating measurements in the traffic banks beats\n"
               "a uniform schedule at small budgets; past ~6 windows the sky is\n"
               "effectively covered and extra measurements add little.\n";
  return 0;
}
