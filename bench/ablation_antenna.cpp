// Ablation — hardware faults vs siting (§5 "Other types of calibration").
//
// Sweeps injected hardware defects at the rooftop site and checks that the
// diagnosis engine separates them from siting effects:
//   1. cable loss 0..20 dB      -> cable fault flagged, loss estimated;
//   2. reference error -12..+12 ppm -> recovered from TV pilots;
//   3. the honest indoor site       -> NOT misdiagnosed as a cable fault.
#include <iostream>

#include "airtraffic/adsb_source.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

calib::CalibrationReport calibrate_with(scenario::Site site, double cable_loss_db,
                                        double lo_ppm,
                                        const calib::WorldModel& world) {
  auto setup = scenario::make_site(site, 2023);

  auto info = sdr::SimulatedSdr::bladerf_like_info();
  info.lo_error_ppm = lo_ppm;
  // A lossy feedline attenuates everything between antenna and LNA. It
  // lives in the device, not the antenna model: the calibration pipeline's
  // clear-sky expectations use the *nominal* antenna, which is exactly why
  // this fault is only discoverable empirically.
  info.frontend_loss_db = cable_loss_db;
  auto device = std::make_unique<sdr::SimulatedSdr>(info, setup.rx_environment(),
                                                    util::Rng(2023));
  device->add_source(std::make_shared<airtraffic::AdsbSignalSource>(world.sky));
  std::uint64_t stream = 1;
  for (const auto& emitter : world.tv_channels)
    device->add_source(std::make_shared<sdr::FixedEmitterSource>(
        emitter, util::Rng(2023).fork(stream++)));

  calib::NodeClaims claims;
  claims.node_id = scenario::site_name(site);
  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
  return calib::CalibrationPipeline(world, cfg).calibrate(*device, claims);
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Ablation: hardware faults vs siting effects\n";
  std::cout << "==========================================================\n";
  const auto world = scenario::make_world(2023);

  util::Table cable({"injected loss dB", "diagnosed", "estimated dB",
                     "classified as"});
  for (double loss : {0.0, 4.0, 8.0, 14.0, 20.0}) {
    const auto report = calibrate_with(scenario::Site::kRooftop, loss, 0.0, world);
    cable.add_row({util::format_fixed(loss, 0),
                   report.hardware.cable_fault_suspected ? "cable fault" : "healthy",
                   util::format_fixed(report.hardware.estimated_cable_loss_db, 1),
                   calib::to_string(report.classification.type)});
  }
  cable.set_title("1) Injected feedline loss at the rooftop site");
  cable.print(std::cout);

  util::Table lo({"true ppm", "measured ppm", "pilots used"});
  for (double ppm : {-12.0, -4.0, 0.0, 4.0, 12.0}) {
    const auto report = calibrate_with(scenario::Site::kRooftop, 0.0, ppm, world);
    lo.add_row({util::format_fixed(ppm, 1),
                report.lo_calibration.usable()
                    ? util::format_fixed(report.lo_calibration.ppm, 2)
                    : "-",
                std::to_string(report.lo_calibration.valid_count)});
  }
  lo.set_title("\n2) Reference-oscillator error recovered from TV pilots");
  lo.print(std::cout);

  const auto indoor = calibrate_with(scenario::Site::kIndoor, 0.0, 0.0, world);
  std::cout << "\n3) Honest indoor site: cable fault suspected = "
            << (indoor.hardware.cable_fault_suspected ? "YES (BUG!)" : "no")
            << " (attenuation there is siting: rising with frequency,\n"
               "   narrow field of view — not a flat hardware loss)\n";

  std::cout << "\nReading: flat injected losses >= ~6 dB are attributed to the\n"
               "RF path with ~1 dB estimation error; oscillator error recovers\n"
               "to ~0.1 ppm from broadcast pilots (kalibrate-style); the indoor\n"
               "site's frequency-shaped attenuation is never blamed on cables.\n";
  return 0;
}
