// Observability overhead benchmark: the capture-path stages of
// BENCH_capture.json re-timed with the observability fast paths (metrics
// AND event journal) enabled vs disabled, tracing off in both, written to
// BENCH_obs.json. CI gates on the documented contract (DESIGN.md §10, §15):
// with tracing off, the obs layer costs < 2% throughput on every capture
// stage — a counter update is one relaxed load plus one relaxed fetch_add,
// paid per *block*, never per sample; a disabled event append is one
// relaxed load. An obs::Sampler ticks on every rep boundary (the heartbeat
// pattern fleet_audit runs), so the registry carries live snapshot traffic
// through the gated section — on the rep boundary rather than a competing
// thread, because the timing loops must stay clean on 1-2 core CI runners.
//
// The gated rows include "event_append": a full capture block plus one
// journal append — the worst plausible cold-path rate (events fire on
// faults and rejects, never per block) — which keeps the mutex-guarded
// append honest against the same 2% gate.
//
// A second, ungated section times one full pipeline calibration with and
// without a TraceSession attached and reports the span count, so the cost
// of tracing (two clock reads + one locked append per stage span) stays a
// published number rather than folklore.
//
// Usage: obs_overhead [--json=PATH] [--iters=N] [--trace-out=PATH]
//                     [--max-overhead=F]
//   --json defaults to BENCH_obs.json; --iters caps each variant's timing
//   loop (0 = auto-calibrate); --trace-out additionally writes the traced
//   pipeline run's Chrome trace (the CI sample artifact);
//   --max-overhead overrides the 0.02 gate.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "calib/pipeline.hpp"
#include "dsp/convolver.hpp"
#include "dsp/fir.hpp"
#include "dsp/iq.hpp"
#include "dsp/nco.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "scenario/testbed.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace speccal;

namespace {

constexpr std::size_t kBlock = 65536;  // one capture block, as in capture_path

struct Row {
  std::string name;
  std::string variant;  // obs_on | obs_off
  std::size_t iterations = 0;
  double wall_s = 0.0;
  double samples_per_s = 0.0;
};

/// One switch for every per-operation obs fast path: the metric kill
/// switch and the event-journal kill switch flip together, so "off" means
/// the whole observability layer is reduced to relaxed loads.
void set_obs_enabled(bool enabled) {
  obs::set_metrics_enabled(enabled);
  obs::set_events_enabled(enabled);
}

/// Heartbeat sampler ticked between timing reps (never inside a timed
/// loop — the loops must stay clean on 1-2 core CI runners).
obs::Sampler* g_sampler = nullptr;

/// Best (minimum) wall time for `iters` calls of fn, over `reps` runs.
template <typename Fn>
double best_wall_s(std::size_t iters, int reps, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best,
                    std::chrono::duration<double>(clock::now() - t0).count());
  }
  return best;
}

/// Auto-calibrate an iteration count giving ~25 ms per rep.
template <typename Fn>
std::size_t calibrate_iters(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= 0.025 || batch > (1u << 16)) return batch;
    batch *= 2;
  }
}

/// Time one stage twice — obs on, obs off — interleaved over `reps`
/// repetitions (min-of-K on each side), so drift hits both variants alike.
/// A measurement that lands at or over `retry_gate` is re-run (at most
/// twice) and the best pass kept: the gate is a contract on the fast path,
/// not on scheduler noise, and a real regression fails every pass. Appends both
/// rows and returns the relative overhead of obs-on (clamped at 0: noise
/// can make the instrumented side come out ahead).
template <typename Fn>
double time_stage(const std::string& name, std::size_t iters,
                  double retry_gate, Fn&& fn, std::vector<Row>& rows) {
  constexpr int kReps = 7;
  if (iters == 0) {
    set_obs_enabled(true);
    iters = calibrate_iters(fn);
  }
  const auto measure = [&](double& on_best, double& off_best) {
    on_best = 1e300;
    off_best = 1e300;
    for (int r = 0; r < kReps; ++r) {
      set_obs_enabled(true);
      on_best = std::min(on_best, best_wall_s(iters, 1, fn));
      set_obs_enabled(false);
      off_best = std::min(off_best, best_wall_s(iters, 1, fn));
      if (g_sampler != nullptr) g_sampler->sample();
    }
    set_obs_enabled(true);
    return std::max(0.0, on_best / off_best - 1.0);
  };
  double on_best = 0.0, off_best = 0.0;
  double overhead = measure(on_best, off_best);
  for (int retry = 0; retry < 2 && overhead >= retry_gate; ++retry) {
    double on2 = 0.0, off2 = 0.0;
    const double second = measure(on2, off2);
    if (second < overhead) {
      overhead = second;
      on_best = on2;
      off_best = off2;
    }
  }

  const double samples = static_cast<double>(iters) * static_cast<double>(kBlock);
  rows.push_back({name, "obs_on", iters, on_best, samples / on_best});
  rows.push_back({name, "obs_off", iters, off_best, samples / off_best});
  return overhead;
}

std::vector<dsp::Sample> noise_block(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<dsp::Sample> block(n);
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return block;
}

// The same fixed TV-emitter scene capture_path times.
struct Scene {
  sdr::EmitterConfig cfg;
  sdr::RxEnvironment rx;
  const sdr::AntennaModel antenna = sdr::AntennaModel::isotropic();

  Scene() {
    cfg.emitter_id = 1;
    cfg.position = geo::destination({37.87, -122.27, 10.0}, 90.0, 15e3);
    cfg.position.alt_m = 180.0;
    cfg.carrier_hz = 521e6;
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = 82.0;
    cfg.link.model = prop::PathModel::kFreeSpace;
    cfg.pilot_offset_hz = -2690559.0;
    rx.position = {37.87, -122.27, 10.0};
    rx.antenna = &antenna;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_obs.json";
  std::string trace_path;
  std::size_t iters = 0;  // auto-calibrate
  double max_overhead = 0.02;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--iters=", 0) == 0)
      iters = static_cast<std::size_t>(std::stoull(arg.substr(8)));
    if (arg.rfind("--trace-out=", 0) == 0) trace_path = arg.substr(12);
    if (arg.rfind("--max-overhead=", 0) == 0)
      max_overhead = std::stod(arg.substr(15));
  }

  const Scene scene;
  std::vector<Row> rows;
  std::vector<std::pair<std::string, double>> overheads;

  // The gated section runs with a live sampler ticking on rep boundaries
  // (see time_stage), so registry snapshot traffic flows through the whole
  // measurement window.
  obs::Sampler sampler(obs::Registry::global());
  g_sampler = &sampler;

  // Stage 1: shaped-emitter render (RenderScratch grow counters live here).
  {
    sdr::FixedEmitterSource source(scene.cfg, util::Rng(21));
    dsp::Buffer accum(kBlock);
    sdr::CaptureContext ctx;
    ctx.center_freq_hz = scene.cfg.carrier_hz;
    ctx.sample_rate_hz = 8e6;
    ctx.sample_count = kBlock;
    ctx.rx = &scene.rx;
    overheads.emplace_back(
        "shaped_render", time_stage("shaped_render", iters, max_overhead,
                                    [&] {
                                      source.render(ctx, accum);
                                      ctx.start_time_s +=
                                          static_cast<double>(kBlock) / 8e6;
                                    },
                                    rows));
  }

  // Stage 2: 127-tap overlap-save shaper (plan-cache counters on first use
  // only; steady state must show zero cost).
  {
    const auto taps = dsp::design_bandpass(8e6, -2.69e6, 2.69e6, 127);
    const auto in = noise_block(kBlock, 5);
    std::vector<dsp::Sample> out(in.size());
    dsp::FftConvolver conv(taps);
    overheads.emplace_back(
        "fir_127tap",
        time_stage("fir_127tap", iters, max_overhead, [&] { conv.filter_into(in, out); },
                   rows));
  }

  // Stage 3: pilot NCO — a pure-compute control lane with no metric in it.
  {
    dsp::Buffer accum(kBlock);
    dsp::Nco nco(-2.69e6, 8e6);
    overheads.emplace_back(
        "nco_pilot", time_stage("nco_pilot", iters, max_overhead,
                                [&] {
                                  for (auto& s : accum) s += nco.next() * 0.01f;
                                },
                                rows));
  }

  // Stage 4: the full simulated capture — two counter adds per block.
  {
    sdr::SimulatedSdr dev(sdr::SimulatedSdr::bladerf_like_info(), scene.rx,
                          util::Rng(7));
    dev.add_source(
        std::make_shared<sdr::FixedEmitterSource>(scene.cfg, util::Rng(21)));
    dev.set_gain_mode(sdr::GainMode::kManual);
    dev.set_gain_db(20.0);
    if (!dev.tune(521e6, 8e6)) {
      std::cerr << "obs_overhead: tune failed\n";
      return 1;
    }
    dsp::Buffer buf(kBlock);
    overheads.emplace_back(
        "sdr_capture",
        time_stage("sdr_capture", iters, max_overhead, [&] { dev.capture_into(buf); }, rows));

    // Stage 5: capture block + one journal append — the worst plausible
    // cold-path event rate (events fire on faults/rejects, never per
    // block). Keeps the mutex-guarded append inside the 2% contract; when
    // events are off the append is one relaxed load.
    overheads.emplace_back(
        "event_append",
        time_stage("event_append", iters, max_overhead,
                   [&] {
                     dev.capture_into(buf);
                     obs::EventLog::global().log(obs::EventSeverity::kInfo,
                                                 "bench_block", "bench-node",
                                                 "capture");
                   },
                   rows));
  }
  g_sampler = nullptr;  // the untimed pipeline section runs without ticks
  const std::size_t sampler_frames = sampler.frame_count();

  // ---------------------------------------------- tracing cost (ungated) ----
  // One node through the full pipeline, untraced vs traced. Spans sit at
  // stage granularity, so the absolute cost is a handful of microseconds —
  // but it is measured, not assumed.
  double untraced_ms = 0.0, traced_ms = 0.0;
  std::size_t trace_events = 0;
  {
    const auto world = scenario::make_world(13, 30);
    calib::PipelineConfig cfg;
    cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
    const calib::CalibrationPipeline pipeline(world, cfg);
    const auto site = scenario::make_site(scenario::Site::kRooftop, 13);
    const auto device = scenario::make_node(site, world, 13);
    calib::NodeClaims claims;
    claims.node_id = "bench-node";
    claims.min_freq_hz = 100e6;
    claims.max_freq_hz = 6e9;
    claims.claims_outdoor = true;

    using clock = std::chrono::steady_clock;
    constexpr int kPipelineReps = 3;
    untraced_ms = 1e300;
    for (int r = 0; r < kPipelineReps; ++r) {
      const auto t0 = clock::now();
      const auto report = pipeline.calibrate(*device, claims);
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - t0).count();
      untraced_ms = std::min(untraced_ms, ms);
      if (report.aborted()) {
        std::cerr << "obs_overhead: pipeline aborted: " << report.abort_reason
                  << "\n";
        return 1;
      }
    }

    obs::TraceSession session;
    traced_ms = 1e300;
    for (int r = 0; r < kPipelineReps; ++r) {
      const auto t0 = clock::now();
      (void)pipeline.calibrate(*device, claims, &session);
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - t0).count();
      traced_ms = std::min(traced_ms, ms);
    }
    trace_events = session.event_count();
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (!os) {
        std::cerr << "obs_overhead: cannot write " << trace_path << "\n";
        return 1;
      }
      session.write_chrome_trace(os);
    }
  }

  // ------------------------------------------------------------- report ----
  util::Table table({"stage", "variant", "Msamples/s"});
  for (const auto& row : rows)
    table.add_row({row.name, row.variant,
                   util::format_fixed(row.samples_per_s / 1e6, 2)});
  table.set_title("Capture-path throughput, obs on vs off (" +
                  std::to_string(kBlock) + "-sample blocks)");
  table.print(std::cout);

  bool ok = true;
  for (const auto& [name, x] : overheads) {
    const bool pass = x < max_overhead;
    ok = ok && pass;
    std::cout << name << " overhead: " << util::format_fixed(x * 100.0, 2)
              << "% (gate " << util::format_fixed(max_overhead * 100.0, 2)
              << "%) -> " << (pass ? "ok" : "FAIL") << "\n";
  }
  std::cout << "background sampler: " << sampler_frames
            << " heartbeat frame(s) during the gated section\n";
  std::cout << "pipeline calibrate: " << util::format_fixed(untraced_ms, 1)
            << " ms untraced, " << util::format_fixed(traced_ms, 1)
            << " ms traced (" << trace_events << " spans over "
            << 3 << " runs; informational)\n";

  std::ofstream os(json_path);
  if (!os) {
    std::cerr << "obs_overhead: cannot write " << json_path << "\n";
    return 1;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench");
  w.value("obs_overhead");
  w.key("schema_version");
  w.value(2);
  w.key("block_size");
  w.value(kBlock);
  w.key("sampler_frames");
  w.value(sampler_frames);
  w.key("max_overhead");
  w.value(max_overhead);
  w.key("results");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("name");
    w.value(row.name);
    w.key("variant");
    w.value(row.variant);
    w.key("iterations");
    w.value(row.iterations);
    w.key("wall_s");
    w.value(row.wall_s);
    w.key("samples_per_s");
    w.value(row.samples_per_s);
    w.end_object();
  }
  w.end_array();
  w.key("overhead");
  w.begin_object();
  for (const auto& [name, x] : overheads) {
    w.key(name);
    w.value(x);
  }
  w.end_object();
  w.key("pipeline_trace");
  w.begin_object();
  w.key("untraced_ms");
  w.value(untraced_ms);
  w.key("traced_ms");
  w.value(traced_ms);
  w.key("events");
  w.value(trace_events);
  w.end_object();
  w.key("ok");
  w.value(ok);
  w.end_object();
  os << "\n";

  if (!ok) {
    std::cerr << "FAIL: metrics overhead exceeded the documented "
              << util::format_fixed(max_overhead * 100.0, 2) << "% contract\n";
    return 1;
  }
  return 0;
}
