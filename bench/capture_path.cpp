// Capture-path stage benchmark: pre/post samples-per-second for each stage
// of the simulated capture hot path, written to BENCH_capture.json (schema
// in DESIGN.md "Capture-path performance"), plus the FftConvolver-vs-
// FirFilter equivalence self-check (nonzero exit on failure — CI gates on
// it).
//
// "pre" variants are verbatim copies of the pre-PR implementations kept
// inside this bench (direct double-accumulation FIR with per-render buffer
// allocation; sin/cos-per-sample NCO), so the comparison stays honest after
// the library paths were rebuilt.
//
// Usage: capture_path [--json=PATH] [--iters=N]
//   --json defaults to BENCH_capture.json; --iters caps each variant's
//   timing loop (0 = auto-calibrate to ~0.25 s per variant; CI passes a
//   small fixed count).
#include <chrono>
#include <cmath>
#include <complex>
#include <fstream>
#include <iostream>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "dsp/convolver.hpp"
#include "dsp/fir.hpp"
#include "dsp/iq.hpp"
#include "dsp/nco.hpp"
#include "dsp/simd.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace speccal;

namespace {

constexpr std::size_t kBlock = 65536;  // one capture block (~8 ms at 8 Msps)

// ------------------------------------------------------------ pre-PR ref ----

namespace legacy {

/// The pre-PR NCO, verbatim: a sin/cos pair per sample.
class SinCosNco {
 public:
  SinCosNco(double freq_hz, double sample_rate_hz) noexcept
      : phase_step_(2.0 * std::numbers::pi * freq_hz / sample_rate_hz) {}

  [[nodiscard]] std::complex<float> next() noexcept {
    const std::complex<float> out(static_cast<float>(std::cos(phase_)),
                                  static_cast<float>(std::sin(phase_)));
    phase_ += phase_step_;
    if (phase_ > std::numbers::pi * 2.0) phase_ -= std::numbers::pi * 2.0;
    if (phase_ < -std::numbers::pi * 2.0) phase_ += std::numbers::pi * 2.0;
    return out;
  }

  void set_phase(double radians) noexcept { phase_ = radians; }

 private:
  double phase_step_;
  double phase_ = 0.0;
};

/// The pre-PR shaped-emitter render body, verbatim in structure: two fresh
/// dsp::Buffer allocations per call, direct time-domain convolution through
/// FirFilter::filter, power normalization over the whole block (warm-up
/// transient included), sin/cos pilot NCO.
class Renderer {
 public:
  Renderer(double sample_rate_hz, double low_hz, double high_hz,
           double target_mw, double pilot_freq_hz, double pilot_rel_db,
           std::uint64_t seed)
      : rng_(seed),
        shaper_(std::make_unique<dsp::FirFilter>(
            dsp::design_bandpass(sample_rate_hz, low_hz, high_hz, 127))),
        sample_rate_hz_(sample_rate_hz),
        target_mw_(target_mw),
        pilot_freq_hz_(pilot_freq_hz),
        pilot_rel_db_(pilot_rel_db) {}

  void render(double start_time_s, std::span<dsp::Sample> accum) {
    shaper_->reset();
    const std::size_t n = accum.size();
    dsp::Buffer white(n);
    for (auto& s : white)
      s = dsp::Sample(static_cast<float>(rng_.normal()),
                      static_cast<float>(rng_.normal()));
    dsp::Buffer shaped = shaper_->filter(white);

    const double fraction_in_band = 1.0 - util::db_to_ratio(pilot_rel_db_);
    const double shaped_power = dsp::mean_power(shaped);
    if (shaped_power <= 0.0) return;
    const float scale = static_cast<float>(
        std::sqrt(target_mw_ * fraction_in_band / shaped_power));
    for (std::size_t i = 0; i < n; ++i) accum[i] += shaped[i] * scale;

    const double pilot_mw = target_mw_ * util::db_to_ratio(pilot_rel_db_);
    const float amp = static_cast<float>(std::sqrt(pilot_mw));
    SinCosNco nco(pilot_freq_hz_, sample_rate_hz_);
    nco.set_phase(2.0 * util::kPi * std::fmod(pilot_freq_hz_ * start_time_s, 1.0));
    for (std::size_t i = 0; i < n; ++i) accum[i] += nco.next() * amp;
  }

 private:
  util::Rng rng_;
  std::unique_ptr<dsp::FirFilter> shaper_;
  double sample_rate_hz_;
  double target_mw_;
  double pilot_freq_hz_;
  double pilot_rel_db_;
};

}  // namespace legacy

// ---------------------------------------------------------------- timing ----

struct Row {
  std::string name;
  std::string variant;
  std::size_t iterations = 0;
  double wall_s = 0.0;
  double samples_per_s = 0.0;
};

/// Time `fn` (one kBlock-sample stage pass per call). iters == 0
/// auto-calibrates to ~0.25 s per variant.
template <typename Fn>
Row time_variant(const std::string& name, const std::string& variant,
                 std::size_t iters, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  if (iters == 0) {
    std::size_t batch = 1;
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < batch; ++i) fn();
      const double s = std::chrono::duration<double>(clock::now() - t0).count();
      if (s >= 0.025 || batch > (1u << 16)) break;
      batch *= 2;
    }
    iters = batch * 10;
  }
  const auto t0 = clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const double wall = std::chrono::duration<double>(clock::now() - t0).count();
  Row row;
  row.name = name;
  row.variant = variant;
  row.iterations = iters;
  row.wall_s = wall;
  row.samples_per_s =
      wall > 0.0 ? static_cast<double>(iters) * static_cast<double>(kBlock) / wall
                 : 0.0;
  return row;
}

std::vector<dsp::Sample> noise_block(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<dsp::Sample> block(n);
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return block;
}

// A fixed TV-emitter scene shared by the pre/post render variants.
struct Scene {
  sdr::EmitterConfig cfg;
  sdr::RxEnvironment rx;
  const sdr::AntennaModel antenna = sdr::AntennaModel::isotropic();

  Scene() {
    cfg.emitter_id = 1;
    cfg.position = geo::destination({37.87, -122.27, 10.0}, 90.0, 15e3);
    cfg.position.alt_m = 180.0;
    cfg.carrier_hz = 521e6;
    cfg.bandwidth_hz = 5.38e6;
    cfg.eirp_dbm = 82.0;
    cfg.link.model = prop::PathModel::kFreeSpace;
    cfg.pilot_offset_hz = -2690559.0;
    rx.position = {37.87, -122.27, 10.0};
    rx.antenna = &antenna;
  }
};

// ----------------------------------------------------- equivalence check ----

struct Equivalence {
  double max_abs_error = 0.0;
  double tolerance = dsp::kConvolverEquivalenceTolerance;
  bool ok = false;
};

Equivalence equivalence_self_check() {
  const auto taps = dsp::design_bandpass(8e6, -2.69e6, 2.69e6, 127);
  const auto in = noise_block(kBlock, 101);

  dsp::FirFilter direct(taps);
  std::vector<dsp::Sample> want(in.size());
  direct.filter_into(in, want);

  dsp::FftConvolver conv(taps);
  std::vector<dsp::Sample> got(in.size());
  conv.filter_into(in, got);

  Equivalence eq;
  for (std::size_t i = 0; i < in.size(); ++i)
    eq.max_abs_error =
        std::max(eq.max_abs_error, static_cast<double>(std::abs(want[i] - got[i])));
  eq.ok = eq.max_abs_error <= eq.tolerance;
  return eq;
}

/// One dispatched-vs-scalar SIMD kernel check (DESIGN.md §14). Elementwise
/// kernels must agree bitwise (tolerance 0); reductions carry the
/// documented tolerance. Any failure exits nonzero — CI gates on it.
struct KernelCheck {
  std::string name;
  double max_abs_error = 0.0;
  double tolerance = 0.0;
  bool ok = false;
};

std::vector<KernelCheck> simd_equivalence_checks() {
  // Odd length so every kernel's vector tail runs too.
  constexpr std::size_t kN = 4097;
  const auto x = noise_block(kN, 201);
  const auto y = noise_block(kN, 202);
  std::vector<float> window(kN);
  {
    util::Rng rng(203);
    for (auto& v : window) v = static_cast<float>(rng.normal());
  }
  std::vector<KernelCheck> checks;
  const auto push = [&checks](const std::string& name, double err, double tol) {
    checks.push_back({name, err, tol, err <= tol});
  };

  {
    std::vector<float> got(kN), want(kN);
    dsp::simd::magnitude_squared(x.data(), got.data(), kN);
    dsp::simd::scalar::magnitude_squared(x.data(), want.data(), kN);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
    push("magnitude_squared", err, 0.0);
  }
  {
    std::vector<dsp::Sample> got(kN), want(kN);
    dsp::simd::apply_window(x.data(), window.data(), got.data(), kN);
    dsp::simd::scalar::apply_window(x.data(), window.data(), want.data(), kN);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      err = std::max(err, static_cast<double>(std::abs(got[i] - want[i])));
    push("apply_window", err, 0.0);
  }
  {
    auto got = x;
    auto want = x;
    dsp::simd::cmul_inplace(got.data(), y.data(), kN);
    dsp::simd::scalar::cmul_inplace(want.data(), y.data(), kN);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      err = std::max(err, static_cast<double>(std::abs(got[i] - want[i])));
    push("cmul_inplace", err, 0.0);
  }
  {
    const double got = dsp::simd::sum_power(x.data(), kN);
    const double want = dsp::simd::scalar::sum_power(x.data(), kN);
    push("sum_power", std::fabs(got - want) / std::max(1.0, std::fabs(want)),
         dsp::simd::kSimdEquivalenceTolerance);
  }
  {
    const auto got = dsp::simd::dot_conj(x.data(), y.data(), kN);
    const auto want = dsp::simd::scalar::dot_conj(x.data(), y.data(), kN);
    push("dot_conj", std::abs(got - want) / std::max(1.0, std::abs(want)),
         dsp::simd::kSimdEquivalenceTolerance);
  }
  {
    // Block NCO vs the per-sample recurrence it replaced in the renderer.
    dsp::Nco block_nco(-2.69e6, 8e6);
    dsp::Nco ref_nco(-2.69e6, 8e6);
    std::vector<dsp::Sample> got(kN), want(kN);
    block_nco.add_tone(got, 0.7f);
    for (auto& v : want) v += ref_nco.next() * 0.7f;
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      err = std::max(err, static_cast<double>(std::abs(got[i] - want[i])));
    push("nco_add_tone", err, dsp::simd::kSimdEquivalenceTolerance);
  }
  return checks;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_capture.json";
  std::size_t iters = 0;  // auto-calibrate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--iters=", 0) == 0)
      iters = static_cast<std::size_t>(std::stoull(arg.substr(8)));
  }

  const Scene scene;
  std::vector<Row> rows;
  std::vector<std::pair<std::string, double>> speedups;

  // Stage 1: shaped-emitter render — the acceptance headline (>= 5x).
  {
    sdr::FixedEmitterSource probe(scene.cfg, util::Rng(21));
    const double rx_dbm = probe.received_power_dbm(scene.rx);
    const double target_mw = util::dbm_to_watts(rx_dbm) * 1e3;
    const double low = -scene.cfg.bandwidth_hz / 2.0;
    const double high = scene.cfg.bandwidth_hz / 2.0;

    legacy::Renderer before(8e6, low, high, target_mw, *scene.cfg.pilot_offset_hz,
                            scene.cfg.pilot_rel_db, 21);
    dsp::Buffer accum(kBlock);
    double t = 0.0;
    const auto pre = time_variant("shaped_render", "pre_direct_fir", iters, [&] {
      before.render(t, accum);
      t += static_cast<double>(kBlock) / 8e6;
    });

    sdr::FixedEmitterSource after(scene.cfg, util::Rng(21));
    sdr::CaptureContext ctx;
    ctx.center_freq_hz = scene.cfg.carrier_hz;
    ctx.sample_rate_hz = 8e6;
    ctx.sample_count = kBlock;
    ctx.rx = &scene.rx;
    const auto post =
        time_variant("shaped_render", "post_overlap_save", iters, [&] {
          after.render(ctx, accum);
          ctx.start_time_s += static_cast<double>(kBlock) / 8e6;
        });

    rows.push_back(pre);
    rows.push_back(post);
    speedups.emplace_back("shaped_render", post.samples_per_s / pre.samples_per_s);
  }

  // Stage 2: 127-tap channel shaper alone — direct vs overlap-save.
  {
    const auto taps = dsp::design_bandpass(8e6, -2.69e6, 2.69e6, 127);
    const auto in = noise_block(kBlock, 5);
    std::vector<dsp::Sample> out(in.size());

    dsp::FirFilter direct(taps);
    const auto pre = time_variant("fir_127tap", "pre_direct_fir", iters, [&] {
      direct.filter_into(in, out);
    });

    dsp::FftConvolver conv(taps);
    const auto post = time_variant("fir_127tap", "post_overlap_save", iters, [&] {
      conv.filter_into(in, out);
    });

    rows.push_back(pre);
    rows.push_back(post);
    speedups.emplace_back("fir_127tap", post.samples_per_s / pre.samples_per_s);
  }

  // Stage 3: pilot NCO — sin/cos per sample vs phasor recurrence.
  {
    dsp::Buffer accum(kBlock);
    legacy::SinCosNco before(-2.69e6, 8e6);
    const auto pre = time_variant("nco_pilot", "pre_sincos", iters, [&] {
      for (auto& s : accum) s += before.next() * 0.01f;
    });

    dsp::Nco after(-2.69e6, 8e6);
    const auto post = time_variant("nco_pilot", "post_phasor", iters, [&] {
      for (auto& s : accum) s += after.next() * 0.01f;
    });

    rows.push_back(pre);
    rows.push_back(post);
    speedups.emplace_back("nco_pilot", post.samples_per_s / pre.samples_per_s);

    // Stage 3b: the SIMD-era block API against the per-sample phasor loop
    // it replaced in the emitter render path.
    dsp::Nco block_nco(-2.69e6, 8e6);
    const auto block_post = time_variant("nco_pilot_block", "post_add_tone",
                                         iters, [&] {
                                           block_nco.add_tone(accum, 0.01f);
                                         });
    rows.push_back(block_post);
    speedups.emplace_back("nco_pilot_block",
                          block_post.samples_per_s / post.samples_per_s);
  }

  // Stage 4: the full simulated capture (render + noise + gain + ADC),
  // post only — the end-to-end number fleet nodes actually pay.
  {
    sdr::SimulatedSdr dev(sdr::SimulatedSdr::bladerf_like_info(), scene.rx,
                          util::Rng(7));
    dev.add_source(std::make_shared<sdr::FixedEmitterSource>(scene.cfg,
                                                             util::Rng(21)));
    dev.set_gain_mode(sdr::GainMode::kManual);
    dev.set_gain_db(20.0);
    if (!dev.tune(521e6, 8e6)) {
      std::cerr << "capture_path: tune failed\n";
      return 1;
    }
    dsp::Buffer buf(kBlock);
    rows.push_back(time_variant("sdr_capture", "post_capture_into", iters,
                                [&] { dev.capture_into(buf); }));
  }

  const Equivalence eq = equivalence_self_check();
  const auto kernel_checks = simd_equivalence_checks();

  // ------------------------------------------------------------- report ----
  util::Table table({"stage", "variant", "Msamples/s"});
  for (const auto& row : rows)
    table.add_row({row.name, row.variant,
                   util::format_fixed(row.samples_per_s / 1e6, 2)});
  table.set_title("Capture-path stage throughput (" + std::to_string(kBlock) +
                  "-sample blocks)");
  table.print(std::cout);
  for (const auto& [name, x] : speedups)
    std::cout << name << " speedup: " << util::format_fixed(x, 2) << "x\n";
  std::cout << "convolver equivalence: max |err| = " << eq.max_abs_error
            << " (tolerance " << eq.tolerance << ") -> "
            << (eq.ok ? "ok" : "FAIL") << "\n";
  std::cout << "simd backend: " << dsp::simd::backend_name() << "\n";
  for (const auto& c : kernel_checks)
    std::cout << "simd " << c.name << ": err = " << c.max_abs_error
              << " (tolerance " << c.tolerance << ") -> "
              << (c.ok ? "ok" : "FAIL") << "\n";

  std::ofstream os(json_path);
  if (!os) {
    std::cerr << "capture_path: cannot write " << json_path << "\n";
    return 1;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench");
  w.value("capture_path");
  w.key("schema_version");
  w.value(2);
  w.key("simd_backend");
  w.value(dsp::simd::backend_name());
  w.key("block_size");
  w.value(kBlock);
  w.key("results");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("name");
    w.value(row.name);
    w.key("variant");
    w.value(row.variant);
    w.key("iterations");
    w.value(row.iterations);
    w.key("wall_s");
    w.value(row.wall_s);
    w.key("samples_per_s");
    w.value(row.samples_per_s);
    w.end_object();
  }
  w.end_array();
  w.key("speedup");
  w.begin_object();
  for (const auto& [name, x] : speedups) {
    w.key(name);
    w.value(x);
  }
  w.end_object();
  w.key("equivalence");
  w.begin_object();
  w.key("max_abs_error");
  w.value(eq.max_abs_error);
  w.key("tolerance");
  w.value(eq.tolerance);
  w.key("ok");
  w.value(eq.ok);
  w.end_object();
  w.key("simd_equivalence");
  w.begin_array();
  for (const auto& c : kernel_checks) {
    w.begin_object();
    w.key("name");
    w.value(c.name);
    w.key("max_abs_error");
    w.value(c.max_abs_error);
    w.key("tolerance");
    w.value(c.tolerance);
    w.key("ok");
    w.value(c.ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";

  if (!eq.ok) {
    std::cerr << "FAIL: FftConvolver diverged from FirFilter beyond the "
                 "documented tolerance\n";
    return 1;
  }
  for (const auto& c : kernel_checks) {
    if (!c.ok) {
      std::cerr << "FAIL: SIMD kernel " << c.name
                << " diverged from its scalar reference\n";
      return 1;
    }
  }
  return 0;
}
