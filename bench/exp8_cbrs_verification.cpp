// Experiment 8 — §3.3: automatic verification of CBRS self-reports.
//
// "every CBRS modem is required to self-report its location, indoor/outdoor
//  status, installation situation ... The methodologies proposed in this
//  paper provide valuable insights that can aid in the development of an
//  automatic verification system."
//
// Sweeps a matrix of CBSD registrations (honest and dishonest combinations
// of siting, category and location) against calibration evidence at the
// three testbed sites and prints the SAS-side verdicts and EIRP grants.
#include <iostream>

#include "cbrs/verify.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {
calib::CalibrationReport calibrate(scenario::Site site,
                                   const calib::WorldModel& world) {
  const auto setup = scenario::make_site(site, 2023);
  auto device = scenario::make_node(setup, world, 2023);
  calib::NodeClaims claims;
  claims.node_id = scenario::site_name(site);
  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
  return calib::CalibrationPipeline(world, cfg).calibrate(*device, claims);
}
}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 8: CBRS CBSD self-report verification (paper 3.3)\n";
  std::cout << "==========================================================\n";
  const auto world = scenario::make_world(2023);
  const cbrs::CbsdVerifier verifier;

  struct Case {
    const char* label;
    scenario::Site actual_site;
    bool claims_indoor;
    cbrs::Category category;
    double false_location_km;  // 0 = honest coordinates
  };
  const Case cases[] = {
      {"honest indoor Cat A", scenario::Site::kIndoor, true, cbrs::Category::kA, 0},
      {"indoor claiming outdoor", scenario::Site::kIndoor, false, cbrs::Category::kA, 0},
      {"honest rooftop Cat A", scenario::Site::kRooftop, false, cbrs::Category::kA, 0},
      {"window claiming Cat B", scenario::Site::kWindow, false, cbrs::Category::kB, 0},
      {"rooftop, faked coordinates", scenario::Site::kRooftop, false,
       cbrs::Category::kA, 25.0},
      {"rooftop claiming indoor", scenario::Site::kRooftop, true, cbrs::Category::kA, 0},
  };

  util::Table table({"case", "verdict", "EIRP grant dBm", "violations",
                     "loc err (median) km"});
  std::vector<std::pair<std::string, cbrs::VerificationResult>> details;
  for (const auto& c : cases) {
    const auto report = calibrate(c.actual_site, world);
    cbrs::CbsdRegistration reg;
    reg.cbsd_id = c.label;
    reg.category = c.category;
    reg.reported_position = scenario::make_site(c.actual_site, 2023).position;
    if (c.false_location_km > 0.0)
      reg.reported_position =
          geo::destination(reg.reported_position, 140.0, c.false_location_km * 1e3);
    reg.indoor_deployment = c.claims_indoor;
    reg.antenna_height_m = 4.0;
    reg.max_eirp_dbm = c.category == cbrs::Category::kB ? cbrs::kCatBMaxEirpDbm
                                                        : cbrs::kCatAMaxEirpDbm;
    const auto result = verifier.verify(reg, report);

    int violations = 0;
    for (const auto& f : result.findings) violations += f.violation ? 1 : 0;
    table.add_row({c.label, cbrs::to_string(result.verdict),
                   result.recommended_eirp_dbm < -100.0
                       ? "DENIED"
                       : util::format_fixed(result.recommended_eirp_dbm, 0),
                   std::to_string(violations),
                   util::format_fixed(result.location_inconsistency_m / 1e3, 1)});
    details.emplace_back(c.label, result);
  }
  table.print(std::cout);

  std::cout << "\nFindings:\n";
  for (const auto& [label, result] : details) {
    if (result.verdict == cbrs::Verdict::kVerified) continue;
    std::cout << "  " << label << ":\n";
    for (const auto& f : result.findings)
      if (f.violation) std::cout << "    - " << f.description << "\n";
  }

  std::cout << "\nReading: honest registrations verify and receive their\n"
               "category cap (indoor sitings get the indoor haircut); gaming\n"
               "attempts — outdoor claims from indoor sites, Category B from a\n"
               "window, faked coordinates — are caught from the same ADS-B +\n"
               "cellular + TV evidence the paper's calibration collects.\n";
  return 0;
}
