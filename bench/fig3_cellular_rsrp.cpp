// Figure 3 — "Cellular networks: different frequency bands".
//
// Reproduces the paper's grouped bar chart: RSRP of towers 1-5 measured at
// the rooftop, behind-window and indoor sites with the srsUE-like scanner.
// A missing bar in the paper is a failed cell search; here it prints "-".
// The shape to match:
//   rooftop : all 5 towers decode with high RSRP,
//   window  : towers 1-3 decode (attenuated), towers 4-5 (2660/2680) lost,
//   indoor  : only tower 1 (731 MHz penetrates), everything else lost.
#include <iostream>
#include <vector>
#include <algorithm>

#include "cellular/pss.hpp"
#include "cellular/scanner.hpp"
#include "scenario/testbed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Figure 3: cellular RSRP across frequency bands x sites\n";
  std::cout << "==========================================================\n";

  const auto db = scenario::make_cell_database();
  const cellular::CellScanner scanner;

  struct SiteColumn {
    scenario::Site site;
    scenario::SiteSetup setup;
    std::vector<cellular::CellMeasurement> scan;
  };
  std::vector<SiteColumn> columns;
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor}) {
    SiteColumn col{site, scenario::make_site(site, 2023), {}};
    col.scan = scanner.scan(db.cells(), col.setup.rx_environment());
    columns.push_back(std::move(col));
  }

  util::Table table({"tower", "DL MHz", "rooftop RSRP", "window RSRP",
                     "indoor RSRP"});
  for (std::size_t t = 0; t < db.cells().size(); ++t) {
    std::vector<std::string> row;
    row.push_back("Tower " + std::to_string(t + 1));
    row.push_back(util::format_fixed(db.cells()[t].dl_freq_hz / 1e6, 0));
    for (const auto& col : columns) {
      const auto& m = col.scan[t];
      row.push_back(m.decoded ? util::format_fixed(m.rsrp_dbm, 1) + " dBm" : "-");
    }
    table.add_row(std::move(row));
  }
  table.set_title("RSRP per tower per site ('-' = sync failed, the paper's"
                  " missing bar)");
  table.print(std::cout);

  // Bar-chart sketch, one block per site like the paper's grouping.
  for (const auto& col : columns) {
    std::cout << "\n" << scenario::site_name(col.site) << ":\n";
    for (std::size_t t = 0; t < col.scan.size(); ++t) {
      const auto& m = col.scan[t];
      std::cout << "  T" << t + 1 << " ("
                << util::format_fixed(m.cell.dl_freq_hz / 1e6, 0) << " MHz) ";
      if (m.decoded)
        std::cout << util::ascii_bar(m.rsrp_dbm, -100.0, -30.0, 40) << " "
                  << util::format_fixed(m.rsrp_dbm, 1) << " dBm\n";
      else
        std::cout << "(no sync)\n";
    }
  }

  // --- waveform cross-validation -------------------------------------------
  // The table above is the model-level scanner (the srsUE full-sync floor).
  // Independently run the physical layer: transmit each cell's PSS through
  // the simulated SDR and detect it by Zadoff-Chu correlation. Raw PSS
  // detection is the *easier* half of a cell search, so every model-decoded
  // cell must also be PSS-visible.
  std::cout << "\nwaveform PSS cross-validation (rooftop site):\n";
  {
    const auto& setup = columns[0].setup;
    auto device = std::make_unique<sdr::SimulatedSdr>(
        sdr::SimulatedSdr::bladerf_like_info(), setup.rx_environment(),
        util::Rng(99));
    prop::LinkParams link;
    link.model = prop::PathModel::kLogDistance;
    link.exponent = 2.9;
    for (const auto& cell : db.cells())
      device->add_source(std::make_shared<cellular::CellSignalSource>(
          cell, link, util::Rng(99).fork(cell.cell_id)));
    std::size_t agree = 0;
    const auto results = cellular::waveform_cell_search(*device, db.cells());
    for (std::size_t t = 0; t < results.size(); ++t) {
      const auto& [cell, det] = results[t];
      const bool model_decoded = columns[0].scan[t].decoded;
      if (!model_decoded || det.detected) ++agree;
      std::cout << "  T" << t + 1 << " ("
                << util::format_fixed(cell.dl_freq_hz / 1e6, 0)
                << " MHz): PSS metric " << util::format_fixed(det.metric, 3)
                << (det.detected ? " detected, N_ID(2)=" + std::to_string(det.nid2)
                                 : " not detected")
                << "\n";
    }
    std::cout << "  model-decoded cells PSS-visible: " << agree << "/"
              << results.size() << "\n";
  }

  std::cout << "\nShape check vs paper (Fig. 3):\n"
            << "  rooftop decodes all 5 towers          : "
            << (std::all_of(columns[0].scan.begin(), columns[0].scan.end(),
                            [](const auto& m) { return m.decoded; })
                    ? "YES"
                    : "NO")
            << "\n  window decodes exactly towers 1-3     : "
            << ((columns[1].scan[0].decoded && columns[1].scan[1].decoded &&
                 columns[1].scan[2].decoded && !columns[1].scan[3].decoded &&
                 !columns[1].scan[4].decoded)
                    ? "YES"
                    : "NO")
            << "\n  indoor decodes only tower 1 (731 MHz) : "
            << ((columns[2].scan[0].decoded && !columns[2].scan[1].decoded &&
                 !columns[2].scan[2].decoded && !columns[2].scan[3].decoded &&
                 !columns[2].scan[4].decoded)
                    ? "YES"
                    : "NO")
            << "\n";
  return 0;
}
