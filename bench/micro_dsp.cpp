// Microbenchmarks: DSP primitives behind the TV power meter and the
// spectrum tooling (google-benchmark).
#include <benchmark/benchmark.h>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/resampler.hpp"
#include "dsp/welch.hpp"
#include "dsp/window.hpp"
#include "util/rng.hpp"

using namespace speccal;

namespace {

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto work = data;
    dsp::fft_inplace(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_PowerSpectrum(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::complex<float>> data(8192);
  for (auto& v : data)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  const auto window = dsp::make_window(dsp::WindowType::kBlackmanHarris, data.size());
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::power_spectrum(data, window));
}
BENCHMARK(BM_PowerSpectrum);

void BM_FirFilter(benchmark::State& state) {
  const auto taps_count = static_cast<std::size_t>(state.range(0));
  const auto taps = dsp::design_bandpass(8e6, -2.69e6, 2.69e6, taps_count);
  dsp::FirFilter filter(taps);
  util::Rng rng(3);
  std::vector<std::complex<float>> block(65536);
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  std::vector<std::complex<float>> out;
  for (auto _ : state) {
    out.clear();
    filter.process(block, out);
    benchmark::DoNotOptimize(out.data());
  }
  // Samples/s: the TV meter needs >= 8 Msps equivalent offline throughput.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_FirFilter)->Arg(63)->Arg(129)->Arg(255);

void BM_MovingAverage(benchmark::State& state) {
  dsp::MovingAverage avg(100000);
  double x = 0.123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(avg.push(x));
    x = x * 1.0000001;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MovingAverage);

void BM_WelchPsd(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<std::complex<float>> block(160000);  // one 20 ms hop at 8 Msps
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  for (auto _ : state) benchmark::DoNotOptimize(dsp::welch_psd(block, 8e6));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_WelchPsd);

void BM_Decimator(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::complex<float>> block(65536);
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  dsp::Decimator dec(4, 8e6);
  std::vector<std::complex<float>> out;
  for (auto _ : state) {
    out.clear();
    dec.process(block, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_Decimator);

void BM_FirDesign(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::design_bandpass(8e6, -2.69e6, 2.69e6, 129));
}
BENCHMARK(BM_FirDesign);

}  // namespace

BENCHMARK_MAIN();
