// Microbenchmarks: DSP primitives behind the TV power meter and the
// spectrum tooling (google-benchmark), plus a self-contained before/after
// comparison of the plan-based engine against the pre-plan free-function
// implementation, written to BENCH_dsp.json (schema in DESIGN.md §8).
//
// Usage:
//   micro_dsp [gbench flags] [--json=PATH] [--compare-iters=N]
// --json defaults to BENCH_dsp.json in the working directory;
// --compare-iters caps the comparison loop (0 = auto-calibrate to ~0.25 s
// per variant; CI's bench-smoke job passes a small fixed count).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <complex>
#include <fstream>
#include <iostream>
#include <numbers>
#include <string>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/plan.hpp"
#include "dsp/resampler.hpp"
#include "dsp/simd.hpp"
#include "dsp/welch.hpp"
#include "dsp/window.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace speccal;

namespace {

// ------------------------------------------------------------ pre-PR ref ----

/// The pre-plan power_spectrum, kept verbatim as the comparison baseline:
/// widens the I/Q block to complex<double>, allocates a fresh work buffer
/// and recomputes twiddles by recurrence on every call.
namespace legacy {

void fft_inplace(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> power_spectrum(std::span<const std::complex<float>> block,
                                   std::span<const double> window) {
  if (block.empty()) return {};
  std::size_t n = 1;
  while (n < block.size()) n <<= 1;

  std::vector<std::complex<double>> work(n, {0.0, 0.0});
  double window_power = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const double w = (i < window.size()) ? window[i] : 1.0;
    window_power += w * w;
    work[i] = std::complex<double>(block[i].real(), block[i].imag()) * w;
  }
  if (window.empty()) window_power = static_cast<double>(block.size());

  fft_inplace(work);

  const double scale = 1.0 / (window_power * static_cast<double>(block.size()));
  std::vector<double> spectrum(n);
  for (std::size_t k = 0; k < n; ++k) spectrum[k] = std::norm(work[k]) * scale;
  return spectrum;
}

/// The pre-streaming goertzel_power, verbatim: one bin per pass, a
/// complex<double> rotation-accumulate (two double complex multiplies per
/// sample) instead of the two-real-multiply recurrence.
double goertzel_power(std::span<const std::complex<float>> block, double freq_hz,
                      double sample_rate_hz) noexcept {
  if (block.empty()) return 0.0;
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  const std::complex<double> coeff(std::cos(w), std::sin(w));
  std::complex<double> acc{};
  std::complex<double> phasor(1.0, 0.0);
  for (const auto& s : block) {
    acc += std::complex<double>(s.real(), s.imag()) * std::conj(phasor);
    phasor *= coeff;
  }
  const double n = static_cast<double>(block.size());
  return std::norm(acc) / (n * n);
}

/// The pre-gate ADS-B first stage, verbatim: scalar |x|^2 followed by the
/// per-position pulse-min / quiet-max compare.
std::size_t preamble_scan(std::span<const std::complex<float>> samples,
                          std::size_t n_positions) {
  constexpr std::size_t kPulse[] = {0, 2, 7, 9};
  constexpr std::size_t kQuiet[] = {1, 3, 5, 11, 13, 15};
  std::vector<float> mag(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) mag[i] = std::norm(samples[i]);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n_positions; ++i) {
    float pulse_min = mag[i + kPulse[0]];
    for (std::size_t p : kPulse) pulse_min = std::min(pulse_min, mag[i + p]);
    float quiet_max = 0.0f;
    for (std::size_t q : kQuiet) quiet_max = std::max(quiet_max, mag[i + q]);
    if (pulse_min > quiet_max) ++hits;
  }
  return hits;
}

}  // namespace legacy

std::vector<std::complex<float>> noise_block(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::complex<float>> block(n);
  for (auto& v : block)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return block;
}

// ------------------------------------------------------- gbench: engines ----

void BM_FftCachedPlanDouble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto work = data;
    dsp::PlanCache::shared().plan_f64(n)->forward(work);  // per-call lookup
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftCachedPlanDouble)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_FftPlanFloat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = noise_block(n, 1);
  const dsp::FftPlan plan(n);
  auto work = data;
  for (auto _ : state) {
    work = data;
    plan.forward(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPlanFloat)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_PowerSpectrumLegacy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = noise_block(n, 2);
  const auto window = dsp::make_window(dsp::WindowType::kBlackmanHarris, n);
  for (auto _ : state)
    benchmark::DoNotOptimize(legacy::power_spectrum(data, window));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PowerSpectrumLegacy)->Arg(4096)->Arg(8192);

void BM_PowerSpectrumPlan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = noise_block(n, 2);
  const auto window = dsp::make_window(dsp::WindowType::kBlackmanHarris, n);
  dsp::SpectrumEstimator estimator(n, window);
  std::vector<double> out;
  for (auto _ : state) {
    estimator.estimate(data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PowerSpectrumPlan)->Arg(4096)->Arg(8192);

void BM_WelchFreshEstimatorPerCall(benchmark::State& state) {
  const auto block = noise_block(160000, 4);  // one 20 ms hop at 8 Msps
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::WelchEstimator{}.estimate(block, 8e6));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_WelchFreshEstimatorPerCall);

void BM_WelchEstimatorReused(benchmark::State& state) {
  const auto block = noise_block(160000, 4);
  dsp::WelchEstimator estimator;
  dsp::WelchResult result;
  for (auto _ : state) {
    estimator.estimate_into(block, 8e6, result);
    benchmark::DoNotOptimize(result.psd.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_WelchEstimatorReused);

// ---------------------------------------------------- gbench: fir et al. ----

void BM_FirFilter(benchmark::State& state) {
  const auto taps_count = static_cast<std::size_t>(state.range(0));
  const auto taps = dsp::design_bandpass(8e6, -2.69e6, 2.69e6, taps_count);
  dsp::FirFilter filter(taps);
  const auto block = noise_block(65536, 3);
  std::vector<std::complex<float>> out;
  for (auto _ : state) {
    out.clear();
    filter.process(block, out);
    benchmark::DoNotOptimize(out.data());
  }
  // Samples/s: the TV meter needs >= 8 Msps equivalent offline throughput.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_FirFilter)->Arg(63)->Arg(129)->Arg(255);

void BM_MovingAverage(benchmark::State& state) {
  dsp::MovingAverage avg(100000);
  double x = 0.123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(avg.push(x));
    x = x * 1.0000001;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MovingAverage);

void BM_Decimator(benchmark::State& state) {
  const auto block = noise_block(65536, 5);
  dsp::Decimator dec(4, 8e6);
  std::vector<std::complex<float>> out;
  for (auto _ : state) {
    out.clear();
    dec.process(block, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block.size()));
}
BENCHMARK(BM_Decimator);

void BM_FirDesign(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dsp::design_bandpass(8e6, -2.69e6, 2.69e6, 129));
}
BENCHMARK(BM_FirDesign);

// ------------------------------------------------- BENCH_dsp.json writer ----

struct CompareRow {
  std::string variant;
  std::size_t iterations = 0;
  double wall_s = 0.0;
  double samples_per_s = 0.0;
};

/// Time `fn` (one 4096-point power spectrum per call). iters == 0
/// auto-calibrates to ~0.25 s.
template <typename Fn>
CompareRow time_variant(const std::string& variant, std::size_t n,
                        std::size_t iters, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  if (iters == 0) {
    // Calibrate: grow until one batch takes >= 25 ms, then run 10 batches.
    std::size_t batch = 8;
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < batch; ++i) fn();
      const double s = std::chrono::duration<double>(clock::now() - t0).count();
      if (s >= 0.025 || batch > (1u << 20)) break;
      batch *= 2;
    }
    iters = batch * 10;
  }
  const auto t0 = clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const double wall = std::chrono::duration<double>(clock::now() - t0).count();
  CompareRow row;
  row.variant = variant;
  row.iterations = iters;
  row.wall_s = wall;
  row.samples_per_s =
      wall > 0.0 ? static_cast<double>(iters * n) / wall : 0.0;
  return row;
}

struct Comparison {
  std::string name;
  CompareRow before;
  CompareRow after;

  [[nodiscard]] double speedup() const noexcept {
    return before.samples_per_s > 0.0 ? after.samples_per_s / before.samples_per_s
                                      : 0.0;
  }
};

/// The acceptance comparisons (schema v2, one speedup entry per row):
///   - power_spectrum_4096_float: pre-plan free function vs plan estimator
///     (the PR-3 row, kept for baseline continuity; the plan side now runs
///     the SIMD butterfly/power kernels);
///   - tv_vacant_channel_power_160k: full-capture Welch integrate vs the
///     Goertzel pilot gate + abbreviated prefix — the gated-detector row
///     CI's bench-smoke holds to >= 4x;
///   - adsb_preamble_first_stage_64k: scalar |x|^2 + min/max scan vs the
///     SIMD magnitude + candidate-bitmap kernels;
///   - goertzel_pilot_probe_3bin_16k: legacy rotate-accumulate (one bin per
///     pass) vs the streaming multi-bin recurrence.
int write_bench_json(const std::string& path, std::size_t compare_iters) {
  std::vector<Comparison> comparisons;

  {
    constexpr std::size_t kN = 4096;
    const auto block = noise_block(kN, 42);
    const auto window = dsp::make_window(dsp::WindowType::kBlackmanHarris, kN);
    Comparison c;
    c.name = "power_spectrum_4096_float";
    c.before = time_variant("pre_plan_free_function", kN, compare_iters, [&] {
      benchmark::DoNotOptimize(legacy::power_spectrum(block, window));
    });
    dsp::SpectrumEstimator estimator(kN, window);
    std::vector<double> out;
    c.after = time_variant("fft_plan_estimator", kN, compare_iters, [&] {
      estimator.estimate(block, out);
      benchmark::DoNotOptimize(out.data());
    });
    comparisons.push_back(std::move(c));
  }

  {
    // One vacant 20 ms TV channel at 8 Msps: integrate the whole capture vs
    // probe the pilot with Goertzel and integrate the 10% prefix (exactly
    // what tv::PowerMeter's gate does on a skip).
    constexpr std::size_t kN = 160000;
    constexpr double kFs = 8e6;
    constexpr double kPilot = -2.690559e6;
    const auto capture = noise_block(kN, 7);
    dsp::WelchEstimator welch{dsp::WelchConfig{}};
    dsp::WelchResult res;
    Comparison c;
    c.name = "tv_vacant_channel_power_160k";
    c.before = time_variant("full_capture_welch", kN, compare_iters, [&] {
      welch.estimate_into(capture, kFs, res);
      benchmark::DoNotOptimize(dsp::band_power(res, kFs, -2.69e6, 2.69e6));
    });
    dsp::Goertzel probe({kPilot, kPilot + 250e3, kPilot - 250e3}, kFs);
    const std::span<const std::complex<float>> span(capture);
    c.after = time_variant("goertzel_gate_prefix", kN, compare_iters, [&] {
      // 4 averaged sub-segments over the 10% gate prefix.
      double pilot = 0.0, floor = 0.0;
      for (std::size_t s = 0; s < 4; ++s) {
        probe.reset();
        probe.feed(span.subspan(s * 4000, 4000));
        pilot += probe.power(0);
        floor += 0.5 * (probe.power(1) + probe.power(2));
      }
      benchmark::DoNotOptimize(pilot);
      if (pilot < util::db_to_ratio(6.0) * floor) {  // vacant: always true
        welch.estimate_into(span.first(16000), kFs, res);
        benchmark::DoNotOptimize(dsp::band_power(res, kFs, -2.69e6, 2.69e6));
      }
    });
    comparisons.push_back(std::move(c));
  }

  {
    constexpr std::size_t kPositions = 65536;
    const auto samples = noise_block(kPositions + 240, 8);
    Comparison c;
    c.name = "adsb_preamble_first_stage_64k";
    c.before = time_variant("scalar_scan", kPositions, compare_iters, [&] {
      benchmark::DoNotOptimize(legacy::preamble_scan(samples, kPositions));
    });
    std::vector<float> mag(samples.size());
    std::vector<std::uint8_t> bitmap(kPositions);
    c.after = time_variant("simd_bitmap", kPositions, compare_iters, [&] {
      dsp::simd::magnitude_squared(samples.data(), mag.data(), samples.size());
      dsp::simd::preamble_candidates(mag.data(), kPositions, bitmap.data());
      benchmark::DoNotOptimize(bitmap.data());
    });
    comparisons.push_back(std::move(c));
  }

  {
    constexpr std::size_t kN = 16384;
    constexpr double kFs = 8e6;
    const auto block = noise_block(kN, 9);
    const std::vector<double> freqs = {-2.690559e6, -2.440559e6, -2.940559e6};
    Comparison c;
    c.name = "goertzel_pilot_probe_3bin_16k";
    c.before = time_variant("rotate_accumulate", kN, compare_iters, [&] {
      double total = 0.0;
      for (double f : freqs) total += legacy::goertzel_power(block, f, kFs);
      benchmark::DoNotOptimize(total);
    });
    dsp::Goertzel g(freqs, kFs);
    c.after = time_variant("streaming_recurrence", kN, compare_iters, [&] {
      g.reset();
      g.feed(block);
      double total = 0.0;
      for (std::size_t b = 0; b < g.bin_count(); ++b) total += g.power(b);
      benchmark::DoNotOptimize(total);
    });
    comparisons.push_back(std::move(c));
  }

  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_dsp: cannot write " << path << "\n";
    return 1;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench");
  w.value("micro_dsp");
  w.key("schema_version");
  w.value(2);
  w.key("simd_backend");
  w.value(dsp::simd::backend_name());
  w.key("results");
  w.begin_array();
  for (const auto& c : comparisons) {
    for (const auto* row : {&c.before, &c.after}) {
      w.begin_object();
      w.key("name");
      w.value(c.name);
      w.key("variant");
      w.value(row->variant);
      w.key("iterations");
      w.value(row->iterations);
      w.key("wall_s");
      w.value(row->wall_s);
      w.key("samples_per_s");
      w.value(row->samples_per_s);
      w.end_object();
    }
  }
  w.end_array();
  w.key("speedup");
  w.begin_object();
  for (const auto& c : comparisons) {
    w.key(c.name);
    w.value(c.speedup());
  }
  w.end_object();
  w.end_object();
  os << "\n";

  for (const auto& c : comparisons)
    std::cout << c.name << ": " << c.before.variant << " "
              << c.before.samples_per_s / 1e6 << " Msps, " << c.after.variant
              << " " << c.after.samples_per_s / 1e6 << " Msps, speedup "
              << c.speedup() << "x\n";
  std::cout << "simd backend: " << dsp::simd::backend_name() << " -> " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_dsp.json";
  std::size_t compare_iters = 0;  // auto-calibrate

  // Peel off our flags; everything else goes to google-benchmark.
  std::vector<char*> gbench_args;
  gbench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare-iters=", 0) == 0) {
      compare_iters = static_cast<std::size_t>(std::stoull(arg.substr(16)));
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  benchmark::RunSpecifiedBenchmarks();

  return write_bench_json(json_path, compare_iters);
}
