// Ablation — receiver design choices (DESIGN.md §6):
//   1. CRC bit-repair budget (0 / 1 / 2 bits): dump1090 repairs 1-2 bit
//      errors, extending range at the risk of false decodes.
//   2. Preamble gate strictness.
//   3. Fixed gain versus AGC for comparable power readings (§3.2: "The SDR
//      was configured with a fixed gain to prevent measurement differences
//      from automatic gain control").
#include <iostream>

#include "adsb/decoder.hpp"
#include "calib/survey.hpp"
#include "scenario/testbed.hpp"
#include "tv/power_meter.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

struct DecodeStats {
  std::size_t aircraft_received = 0;
  std::uint64_t frames = 0;
  std::uint64_t repaired = 0;
  std::uint32_t unmatched = 0;
};

DecodeStats run_with(int repair_bits, double preamble_ratio) {
  const auto world = scenario::make_world(2023);
  const auto setup = scenario::make_site(scenario::Site::kWindow, 2023);
  auto device = scenario::make_node(setup, world, 2023);
  airtraffic::GroundTruthService gt(*world.sky, world.ground_truth_latency_s);

  calib::SurveyConfig cfg;
  cfg.duration_s = 15.0;
  cfg.ground_truth_query_at_s = 7.5;
  cfg.demod_override = adsb::DemodConfig{repair_bits, preamble_ratio};
  const auto result = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);

  DecodeStats out;
  out.aircraft_received = result.received_count();
  out.frames = result.total_frames_decoded;
  out.repaired = result.frames_crc_repaired;
  out.unmatched = result.unmatched_receptions;
  return out;
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Ablation: decoder design choices (window site, 15 s)\n";
  std::cout << "==========================================================\n";

  util::Table repair({"CRC repair bits", "aircraft rx", "frames", "repaired",
                      "ghost aircraft"});
  for (int bits : {0, 1, 2}) {
    const auto stats = run_with(bits, 2.0);
    repair.add_row({std::to_string(bits), std::to_string(stats.aircraft_received),
                    std::to_string(stats.frames), std::to_string(stats.repaired),
                    std::to_string(stats.unmatched)});
  }
  repair.set_title("1) CRC repair budget (dump1090 default: 1-2 bits)");
  repair.print(std::cout);

  util::Table gate({"preamble ratio", "aircraft rx", "frames"});
  for (double ratio : {1.5, 2.0, 3.0, 5.0}) {
    const auto stats = run_with(1, ratio);
    gate.add_row({util::format_fixed(ratio, 1),
                  std::to_string(stats.aircraft_received),
                  std::to_string(stats.frames)});
  }
  gate.set_title("\n2) Preamble gate strictness (pulse/quiet power ratio)");
  gate.print(std::cout);

  // 3) Fixed gain vs AGC for TV power comparisons: measure the same strong
  // and weak channel at the window site under both gain policies.
  std::cout << "\n3) Fixed gain vs AGC for the TV power measurement\n";
  const auto world = scenario::make_world(2023);
  const auto setup = scenario::make_site(scenario::Site::kWindow, 2023);

  tv::PowerMeter fixed_meter;  // paper's choice
  auto dev_fixed = scenario::make_node(setup, world, 2023);
  const auto strong_fixed = fixed_meter.measure_channel(*dev_fixed, 22);
  const auto weak_fixed = fixed_meter.measure_channel(*dev_fixed, 14);

  auto dev_agc = scenario::make_node(setup, world, 2023);
  auto agc_reading = [&](int ch) {
    dev_agc->set_gain_mode(sdr::GainMode::kAgc);
    dev_agc->tune(tv::channel_center_hz(ch).value(), 8e6);
    const auto buf = dev_agc->capture(160000);
    return dsp::mean_power_dbfs(buf);
  };
  const double strong_agc = agc_reading(22);
  const double weak_agc = agc_reading(14);

  util::Table gains({"channel", "fixed-gain dBFS", "AGC dBFS"});
  gains.add_row({"22 (strong)", util::format_fixed(strong_fixed.power_dbfs, 1),
                 util::format_fixed(strong_agc, 1)});
  gains.add_row({"14 (weak)", util::format_fixed(weak_fixed.power_dbfs, 1),
                 util::format_fixed(weak_agc, 1)});
  gains.print(std::cout);
  std::cout << "fixed-gain spread " << util::format_fixed(
                   strong_fixed.power_dbfs - weak_fixed.power_dbfs, 1)
            << " dB vs AGC spread "
            << util::format_fixed(strong_agc - weak_agc, 1)
            << " dB — AGC erases the level differences the calibration\n"
               "needs, which is why the paper pins the gain.\n";
  return 0;
}
