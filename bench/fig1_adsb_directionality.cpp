// Figure 1 — "ADS-B performance for measuring directionality".
//
// Reproduces the paper's polar scatter plots as text: for each of the three
// sites (rooftop / behind-window / indoor) run the 30-second procedure of
// §3.1 (decode ADS-B, query ground truth at t=15 s within 100 km, join by
// ICAO) through the FULL waveform pipeline, then print
//   * per-30°-sector reception statistics (the polar plot, textual),
//   * the maximum reception range per sector,
//   * the paper's headline numbers: max range in the open sector, and the
//     radius inside which aircraft are received regardless of direction.
// A link-budget repetition sweep (the paper repeated the experiment >10x)
// checks stability across sky realizations.
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "calib/fov.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

struct SectorStats {
  int received = 0;
  int missed = 0;
  double max_received_km = 0.0;
};

void run_site(scenario::Site site, std::uint64_t seed) {
  const auto world = scenario::make_world(seed);
  const auto setup = scenario::make_site(site, seed);
  auto device = scenario::make_node(setup, world, seed);
  airtraffic::GroundTruthService gt(*world.sky, world.ground_truth_latency_s);

  calib::SurveyConfig cfg;  // paper defaults: 30 s, 100 km, query at 15 s
  const auto result = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);

  std::cout << "\n--- Figure 1 (" << scenario::site_name(site) << ") ---\n";
  std::cout << "ground-truth aircraft within 100 km : " << result.observations.size()
            << "\n";
  std::cout << "received (blue)                     : " << result.received_count()
            << "\n";
  std::cout << "missed (gray)                       : " << result.missed_count()
            << "\n";
  std::cout << "frames decoded                      : " << result.total_frames_decoded
            << " (" << result.frames_crc_repaired << " CRC-repaired)\n";

  // 30-degree polar histogram (12 sectors, like reading the paper's plot).
  std::map<int, SectorStats> sectors;
  double far_received_km = 0.0;
  double omni_radius_km = 0.0;  // farthest reception in a *blocked* direction
  for (const auto& obs : result.observations) {
    auto& s = sectors[static_cast<int>(obs.azimuth_deg / 30.0) % 12];
    if (obs.received) {
      ++s.received;
      s.max_received_km = std::max(s.max_received_km, obs.range_km);
      far_received_km = std::max(far_received_km, obs.range_km);
    } else {
      ++s.missed;
    }
  }
  const auto truth_clear = setup.obstructions->clear_sectors(1090e6);
  std::vector<double> blocked_rx_km;
  for (const auto& obs : result.observations)
    if (obs.received && !truth_clear.contains(obs.azimuth_deg))
      blocked_rx_km.push_back(obs.range_km);
  if (!blocked_rx_km.empty()) {
    // Report the typical (median) blocked-direction reach; the max is a
    // one-aircraft shadow-fading tail.
    std::sort(blocked_rx_km.begin(), blocked_rx_km.end());
    omni_radius_km = blocked_rx_km[blocked_rx_km.size() / 2];
  }

  util::Table table({"sector", "truth", "received/present", "max rx km", "plot"});
  for (int s = 0; s < 12; ++s) {
    const auto& st = sectors[s];
    const double center = s * 30.0 + 15.0;
    table.add_row({std::to_string(s * 30) + "-" + std::to_string(s * 30 + 30),
                   truth_clear.contains(center) ? "open" : "blocked",
                   std::to_string(st.received) + "/" +
                       std::to_string(st.received + st.missed),
                   util::format_fixed(st.max_received_km, 0),
                   util::ascii_bar(st.max_received_km, 0.0, 100.0, 20)});
  }
  table.print(std::cout);

  std::cout << "max reception range (open sector)    : "
            << util::format_fixed(far_received_km, 0) << " km   [paper: "
            << (site == scenario::Site::kRooftop
                    ? "95 km west"
                    : site == scenario::Site::kWindow ? "80 km in slim sector"
                                                      : "close-in only")
            << "]\n";
  std::cout << "received-regardless-of-direction radius: "
            << util::format_fixed(omni_radius_km, 0)
            << " km typical (max "
            << util::format_fixed(blocked_rx_km.empty() ? 0.0 : blocked_rx_km.back(), 0)
            << ")   [paper: ~20 km at every location]\n";

  const auto fov = calib::estimate_fov_knn(result);
  std::cout << "estimated field of view              : "
            << fov.open_sectors.to_string() << "\n";
  std::cout << "true field of view                   : " << truth_clear.to_string()
            << "\n";
  std::cout << "estimate/truth overlap (Jaccard)     : "
            << util::format_fixed(calib::fov_accuracy(fov, truth_clear), 2) << "\n";
}

void repetition_sweep(scenario::Site site) {
  // The paper: "We repeated these experiments over 10 times ... obtaining
  // similar results." Ten sky realizations in link-budget fidelity.
  std::cout << "\nrepetition sweep (" << scenario::site_name(site)
            << ", 10 sky realizations, link-budget fidelity):\n  received/present: ";
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto world = scenario::make_world(seed * 101);
    const auto setup = scenario::make_site(site, seed * 101);
    auto device = scenario::make_node(setup, world, seed * 101);
    airtraffic::GroundTruthService gt(*world.sky, world.ground_truth_latency_s);
    calib::SurveyConfig cfg;
    cfg.fidelity = calib::Fidelity::kLinkBudget;
    const auto result = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);
    std::cout << result.received_count() << "/" << result.observations.size() << " ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Figure 1: ADS-B directional reception at three sites\n";
  std::cout << " (30 s waveform survey, 100 km ground-truth radius)\n";
  std::cout << "==========================================================\n";
  constexpr std::uint64_t kSeed = 2023;
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor})
    run_site(site, kSeed);
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor})
    repetition_sweep(site);
  std::cout << "\nShape check vs paper: rooftop reaches ~95 km only in the open\n"
               "west sector; the window site reaches far only through its slim\n"
               "sector; the indoor site sees close-in aircraft only; every site\n"
               "receives nearby (<~20-25 km) aircraft regardless of direction.\n";
  return 0;
}
