// Experiment 6 — §5 "End-to-end system": ML-style field-of-view estimation.
//
// "use model-based or ML-based techniques to calibrate a sensor given the
//  observed and ground-truth airplane locations ... such as k-nearest
//  neighbors (KNN) ... to estimate the true sensor field of view."
//
// Sweeps sky density (traffic volume) and measurement duration, comparing
// the sector-histogram baseline against the KNN estimator. Accuracy is the
// Jaccard overlap between the estimated open azimuth set and the site's
// true clear sectors. Averaged over 5 sky realizations per cell.
#include <iostream>

#include "calib/fov.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

struct Cell {
  double sector_acc = 0.0;
  double knn_acc = 0.0;
  double observations = 0.0;
};

Cell evaluate(scenario::Site site, std::size_t aircraft, double duration_s) {
  Cell out;
  constexpr int kRepeats = 5;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(rep) * 13;
    const auto world = scenario::make_world(seed, aircraft);
    const auto setup = scenario::make_site(site, seed);
    auto device = scenario::make_node(setup, world, seed);
    airtraffic::GroundTruthService gt(*world.sky, world.ground_truth_latency_s);

    calib::SurveyConfig cfg;
    cfg.fidelity = calib::Fidelity::kLinkBudget;
    cfg.duration_s = duration_s;
    cfg.ground_truth_query_at_s = duration_s / 2.0;
    const auto survey = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);

    const auto truth = setup.obstructions->clear_sectors(1090e6);
    const auto sector_est = calib::estimate_fov_sectors(survey);
    const auto knn_est = calib::estimate_fov_knn(survey);
    out.sector_acc += calib::fov_accuracy(sector_est, truth);
    out.knn_acc += calib::fov_accuracy(knn_est, truth);
    out.observations += static_cast<double>(knn_est.usable_observations);
  }
  out.sector_acc /= kRepeats;
  out.knn_acc /= kRepeats;
  out.observations /= kRepeats;
  return out;
}

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 6: FoV estimation accuracy (sector baseline vs KNN)\n";
  std::cout << "==========================================================\n";

  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow}) {
    util::Table table({"aircraft", "duration s", "usable obs", "sector acc",
                       "KNN acc"});
    for (std::size_t aircraft : {15u, 30u, 70u, 120u}) {
      for (double duration : {30.0, 120.0}) {
        const Cell cell = evaluate(site, aircraft, duration);
        table.add_row({std::to_string(aircraft), util::format_fixed(duration, 0),
                       util::format_fixed(cell.observations, 1),
                       util::format_fixed(cell.sector_acc, 3),
                       util::format_fixed(cell.knn_acc, 3)});
      }
    }
    table.set_title("\nSite: " + scenario::site_name(site) +
                    " (mean of 5 sky realizations)");
    table.print(std::cout);
  }

  std::cout << "\nReading: accuracy rises with traffic (more azimuth samples).\n"
               "In sparse skies the interpolating histogram is the safer bet —\n"
               "its wide bins average away single misleading observations — while\n"
               "KNN pulls ahead once traffic or dwell time grows (>=70 aircraft or\n"
               "120 s windows), where its finer angular resolution pays off. The\n"
               "paper's 30 s window with a full urban sky (~70 aircraft) already\n"
               "yields a usable estimate from either method.\n";
  return 0;
}
