// Experiment 9 — §5: ML-based indoor/outdoor classification versus the
// rule-based baseline.
//
// Trains the logistic-regression classifier on calibration reports from
// simulated fleets (several sky seeds x three sites), evaluates on held-out
// seeds, and compares against the zero-data rule-based classifier. Also
// prints the learned weights — which calibration feature carries the
// indoor/outdoor signal.
#include <iostream>
#include <vector>

#include "calib/ml.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

calib::CalibrationReport calibrate(scenario::Site site, std::uint64_t seed) {
  const auto world = scenario::make_world(seed);
  const auto setup = scenario::make_site(site, seed);
  auto device = scenario::make_node(setup, world, seed);
  calib::NodeClaims claims;
  claims.node_id = scenario::site_name(site);
  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;
  return calib::CalibrationPipeline(world, cfg).calibrate(*device, claims);
}

constexpr scenario::Site kSites[] = {scenario::Site::kRooftop,
                                     scenario::Site::kWindow,
                                     scenario::Site::kIndoor};

}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 9: ML indoor/outdoor classifier vs rule baseline\n";
  std::cout << "==========================================================\n";

  // Training fleet: 8 seeds x 3 sites = 24 calibration reports.
  std::vector<calib::MlFeatures> train_x;
  std::vector<bool> train_y;
  std::cout << "calibrating training fleet (24 nodes)...\n";
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    for (auto site : kSites) {
      train_x.push_back(calib::MlFeatures::from_report(calibrate(site, seed)));
      train_y.push_back(site != scenario::Site::kRooftop);
    }
  }
  calib::IndoorClassifier clf;
  const double loss = clf.train(train_x, train_y);
  std::cout << "training loss: " << util::format_fixed(loss, 4) << "\n\n";

  util::Table weights({"feature", "weight"});
  for (std::size_t k = 0; k < calib::MlFeatures::kCount; ++k)
    weights.add_row({calib::MlFeatures::name(k),
                     util::format_fixed(clf.weights()[k], 2)});
  weights.set_title("Learned weights (positive pushes toward 'indoor')");
  weights.print(std::cout);

  // Held-out evaluation: 6 new seeds x 3 sites.
  int ml_correct = 0, rule_correct = 0, total = 0;
  util::Table results({"seed", "site", "truth", "ML P(indoor)", "ML", "rules"});
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    for (auto site : kSites) {
      const auto report = calibrate(site, seed);
      const bool truth = site != scenario::Site::kRooftop;
      const auto features = calib::MlFeatures::from_report(report);
      const double p = clf.predict_probability(features);
      const bool ml = p >= 0.5;
      const bool rules = report.classification.indoor();
      ml_correct += ml == truth;
      rule_correct += rules == truth;
      ++total;
      results.add_row({std::to_string(seed), scenario::site_name(site),
                       truth ? "indoor" : "outdoor", util::format_fixed(p, 2),
                       ml == truth ? "ok" : "WRONG", rules == truth ? "ok" : "WRONG"});
    }
  }
  results.set_title("\nHeld-out evaluation (6 unseen skies x 3 sites)");
  results.print(std::cout);

  std::cout << "\nML accuracy        : " << ml_correct << "/" << total << "\n";
  std::cout << "rule-based accuracy: " << rule_correct << "/" << total << "\n";
  std::cout << "\nReading: both classifiers separate the testbed sites; the\n"
               "trained model additionally yields calibrated probabilities and\n"
               "adapts to fleet-specific siting patterns without re-tuning the\n"
               "hand-written thresholds (the paper's §5 motivation for ML).\n";
  return 0;
}
