// Experiment 5 — §3.2's deduction step: indoor/outdoor inference and claim
// verification ("These deductions can be used to independently verify
// claims about a node installation").
//
// Runs the full calibration pipeline at all three sites twice: once with
// honest operator claims and once with inflated ones (claims outdoor +
// omnidirectional + 100 MHz - 6 GHz), and prints classification, trust
// scores and the findings that justify them.
#include <iostream>

#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {
calib::CalibrationReport run(scenario::Site site, bool inflated_claims,
                             const calib::WorldModel& world) {
  const auto setup = scenario::make_site(site, 2023);
  auto device = scenario::make_node(setup, world, 2023);

  calib::NodeClaims claims;
  claims.node_id = std::string(scenario::site_name(site)) +
                   (inflated_claims ? "-inflated" : "-honest");
  claims.min_freq_hz = 100e6;
  claims.max_freq_hz = 6e9;
  claims.claims_outdoor = inflated_claims || site == scenario::Site::kRooftop;
  claims.claims_omnidirectional = inflated_claims;

  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;  // sweep-friendly
  calib::CalibrationPipeline pipeline(world, cfg);
  return pipeline.calibrate(*device, claims);
}
}  // namespace

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Exp 5: installation classification & claim verification\n";
  std::cout << "==========================================================\n";
  const auto world = scenario::make_world(2023);

  util::Table table({"node", "classified as", "conf", "trust", "violations"});
  std::vector<calib::CalibrationReport> reports;
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor}) {
    for (bool inflated : {false, true}) {
      auto report = run(site, inflated, world);
      table.add_row({report.claims.node_id,
                     calib::to_string(report.classification.type),
                     util::format_fixed(report.classification.confidence, 2),
                     util::format_fixed(report.trust.score, 0),
                     std::to_string(report.trust.violations())});
      reports.push_back(std::move(report));
    }
  }
  table.print(std::cout);

  std::cout << "\nFindings for the inflated-claim nodes:\n";
  for (const auto& report : reports) {
    if (report.claims.node_id.find("inflated") == std::string::npos) continue;
    std::cout << "  " << report.claims.node_id << ":\n";
    for (const auto& f : report.trust.findings) {
      const char* tag = f.severity == calib::Severity::kViolation
                            ? "VIOLATION"
                            : f.severity == calib::Severity::kWarning ? "warning"
                                                                      : "info";
      std::cout << "    [" << tag << "] " << f.description << "\n";
    }
  }

  std::cout << "\nClassification rationale (honest nodes):\n";
  for (const auto& report : reports) {
    if (report.claims.node_id.find("honest") == std::string::npos) continue;
    std::cout << "  " << report.claims.node_id << " -> "
              << calib::to_string(report.classification.type) << "\n";
    for (const auto& reason : report.classification.rationale)
      std::cout << "    - " << reason << "\n";
  }

  std::cout << "\nShape check: the rooftop node classifies outdoor, the window\n"
               "node indoor-window, the interior node indoor-deep; inflated\n"
               "claims are caught at the window and indoor sites.\n";
  return 0;
}
