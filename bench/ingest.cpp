// Segment ingest throughput: encode and decode rates for every wire
// encoding, single-threaded — i.e. per decode-farm core. The decode path
// measured here (parse_segment + decode_payload into a reused buffer) is
// exactly what one DecodeFarm worker runs per segment, so segments/s here
// times decode_threads bounds farm ingest.
//
// Also self-checks each lossy encoding against its documented worst-case
// error (segment.hpp) and exits nonzero on a violation — the bench doubles
// as the tolerance conformance gate in CI.
//
// Results go to BENCH_ingest.json (--json=PATH; schema v1). --iters=N
// scales the number of timed passes over the capture set.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/segment.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

constexpr std::uint64_t kSeed = 17;
constexpr std::size_t kCaptures = 24;
constexpr std::size_t kSamplesPerCapture = 65536;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// IQ with the dynamic range the simulator produces (unit-ish peaks).
std::vector<dsp::Buffer> make_captures() {
  util::Rng rng(kSeed);
  std::vector<dsp::Buffer> captures(kCaptures);
  for (auto& buf : captures) {
    buf.resize(kSamplesPerCapture);
    for (auto& s : buf)
      s = dsp::Sample(static_cast<float>(rng.normal(0.0, 0.25)),
                      static_cast<float>(rng.normal(0.0, 0.25)));
  }
  return captures;
}

struct EncodingRow {
  net::Encoding encoding = net::Encoding::kFloat32;
  std::size_t wire_bytes = 0;           // total wire bytes for the capture set
  double encode_segments_per_s = 0.0;   // per core (single-threaded)
  double encode_mbytes_per_s = 0.0;
  double decode_segments_per_s = 0.0;
  double decode_mbytes_per_s = 0.0;
  double max_abs_error = 0.0;           // vs the float32 originals
  double error_bound = 0.0;             // documented bound (0 = exact)
  bool within_tolerance = true;
};

/// Documented worst-case reconstruction error for `encoding` given the
/// per-segment scale (segment.hpp), plus a couple of ULPs of float
/// rounding in the encode/decode arithmetic.
double error_bound_for(net::Encoding encoding, float scale, float peak) {
  const double ulps = std::ldexp(static_cast<double>(peak), -22);
  switch (encoding) {
    case net::Encoding::kFloat32:
      return 0.0;
    case net::Encoding::kFloat16:
      return std::ldexp(1.0, -11) * std::max(1.0f, peak);
    case net::Encoding::kFixed8:
      return static_cast<double>(scale) / 254.0 + ulps;
    case net::Encoding::kFixed12:
      return static_cast<double>(scale) / 4094.0 + ulps;
  }
  return 0.0;
}

EncodingRow run_encoding(net::Encoding encoding,
                         const std::vector<dsp::Buffer>& captures, int iters) {
  EncodingRow row;
  row.encoding = encoding;

  net::CaptureMeta meta;
  meta.center_freq_hz = 605e6;
  meta.sample_rate_hz = 2.4e6;
  meta.gain_db = 30.0;

  net::SegmentWriterConfig cfg;
  cfg.encoding = encoding;

  // Reference wire stream (kept for the decode passes and the self-check).
  std::vector<net::Segment> wire;
  {
    net::SegmentWriter writer(cfg, 1);
    for (const auto& capture : captures)
      writer.write_capture(meta, capture,
                           [&](net::Segment&& s) { wire.push_back(std::move(s)); });
  }
  for (const auto& seg : wire) row.wire_bytes += seg.size();

  // Encode throughput: re-encode the capture set `iters` times.
  std::size_t encoded_segments = 0;
  const auto encode_start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    net::SegmentWriter writer(cfg, 1);
    for (const auto& capture : captures)
      writer.write_capture(meta, capture,
                           [&](net::Segment&& s) { ++encoded_segments; (void)s; });
  }
  const double encode_s = seconds_since(encode_start);
  row.encode_segments_per_s = static_cast<double>(encoded_segments) / encode_s;
  row.encode_mbytes_per_s = static_cast<double>(row.wire_bytes) *
                            static_cast<double>(iters) / encode_s / 1e6;

  // Decode throughput: the farm worker's inner loop over the wire stream.
  dsp::Buffer scratch;
  std::size_t decoded_segments = 0;
  const auto decode_start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const auto& seg : wire) {
      net::SegmentView view;
      if (net::parse_segment(seg.bytes, view) != net::DecodeStatus::kOk) {
        std::cerr << "ingest: reference segment failed to parse\n";
        std::exit(1);
      }
      net::decode_payload(view, scratch);
      ++decoded_segments;
    }
  }
  const double decode_s = seconds_since(decode_start);
  row.decode_segments_per_s = static_cast<double>(decoded_segments) / decode_s;
  row.decode_mbytes_per_s = static_cast<double>(row.wire_bytes) *
                            static_cast<double>(iters) / decode_s / 1e6;

  // Tolerance self-check against the float32 originals.
  std::size_t capture_i = 0, offset = 0;
  for (const auto& seg : wire) {
    net::SegmentView view;
    (void)net::parse_segment(seg.bytes, view);
    net::decode_payload(view, scratch);
    const auto& original = captures[capture_i];
    float peak = 0.0f;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      const auto& o = original[offset + i];
      peak = std::max({peak, std::abs(o.real()), std::abs(o.imag())});
      row.max_abs_error = std::max(
          {row.max_abs_error,
           static_cast<double>(std::abs(scratch[i].real() - o.real())),
           static_cast<double>(std::abs(scratch[i].imag() - o.imag()))});
    }
    row.error_bound = std::max(
        row.error_bound, error_bound_for(encoding, view.header.scale, peak));
    offset += scratch.size();
    if (offset == original.size()) {
      offset = 0;
      ++capture_i;
    }
  }
  row.within_tolerance = row.max_abs_error <= row.error_bound ||
                         (encoding == net::Encoding::kFloat32 &&
                          row.max_abs_error == 0.0);
  return row;
}

bool write_bench_json(const std::string& path, const std::vector<EncodingRow>& rows,
                      int iters) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "ingest: cannot write " << path << "\n";
    return false;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench");
  w.value("ingest");
  w.key("schema_version");
  w.value(1);
  w.key("captures");
  w.value(kCaptures);
  w.key("samples_per_capture");
  w.value(kSamplesPerCapture);
  w.key("iters");
  w.value(static_cast<std::size_t>(iters));
  w.key("hardware_threads");
  w.value(static_cast<std::size_t>(std::thread::hardware_concurrency()));
  // All rates are single-threaded, i.e. per decode-farm core.
  w.key("results");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("encoding");
    w.value(net::to_string(row.encoding));
    w.key("bytes_per_sample");
    w.value(net::bytes_per_sample(row.encoding));
    w.key("wire_bytes");
    w.value(row.wire_bytes);
    w.key("encode_segments_per_s");
    w.value(row.encode_segments_per_s);
    w.key("encode_mbytes_per_s");
    w.value(row.encode_mbytes_per_s);
    w.key("decode_segments_per_s");
    w.value(row.decode_segments_per_s);
    w.key("decode_mbytes_per_s");
    w.value(row.decode_mbytes_per_s);
    w.key("max_abs_error");
    w.value(row.max_abs_error);
    w.key("error_bound");
    w.value(row.error_bound);
    w.key("within_tolerance");
    w.value(row.within_tolerance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_ingest.json";
  int iters = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--iters=", 0) == 0) iters = std::stoi(arg.substr(8));
  }
  if (iters < 1) iters = 1;

  const auto captures = make_captures();
  std::cout << "Segment ingest: " << kCaptures << " captures x "
            << kSamplesPerCapture << " samples, " << iters
            << " timed passes, single-threaded (per farm core)\n";

  const net::Encoding encodings[] = {
      net::Encoding::kFloat32, net::Encoding::kFloat16, net::Encoding::kFixed8,
      net::Encoding::kFixed12};
  std::vector<EncodingRow> rows;
  for (const auto encoding : encodings)
    rows.push_back(run_encoding(encoding, captures, iters));

  util::Table table({"encoding", "B/sample", "enc seg/s", "enc MB/s",
                     "dec seg/s", "dec MB/s", "max err", "bound"});
  bool all_within = true;
  for (const auto& row : rows) {
    char max_err[32], bound[32];
    std::snprintf(max_err, sizeof(max_err), "%.3e", row.max_abs_error);
    std::snprintf(bound, sizeof(bound), "%.3e", row.error_bound);
    table.add_row({net::to_string(row.encoding),
                   std::to_string(net::bytes_per_sample(row.encoding)),
                   std::to_string(static_cast<long>(row.encode_segments_per_s)),
                   std::to_string(static_cast<long>(row.encode_mbytes_per_s)),
                   std::to_string(static_cast<long>(row.decode_segments_per_s)),
                   std::to_string(static_cast<long>(row.decode_mbytes_per_s)),
                   max_err, bound});
    all_within = all_within && row.within_tolerance;
  }
  table.print(std::cout);

  if (!write_bench_json(json_path, rows, iters)) return 1;
  std::cout << "wrote " << json_path << "\n";

  if (!all_within) {
    std::cerr << "ingest: FAIL — an encoding exceeded its documented "
                 "error bound\n";
    return 1;
  }
  std::cout << "all encodings within documented error bounds\n";
  return 0;
}
