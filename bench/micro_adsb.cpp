// Microbenchmarks: Mode S / ADS-B hot paths (google-benchmark).
//
// The decoder must keep up with a live 2 Msps stream on a Raspberry-Pi
// class host (§2), so demodulation throughput is the headline number.
#include <benchmark/benchmark.h>

#include "adsb/cpr.hpp"
#include "adsb/crc.hpp"
#include "adsb/decoder.hpp"
#include "adsb/frame.hpp"
#include "adsb/ppm.hpp"
#include "util/rng.hpp"

using namespace speccal;

namespace {

adsb::RawFrame sample_frame() {
  return adsb::build_position_frame(0xA1B2C3, 37.87, -122.27, 35000.0, false);
}

void BM_Crc24(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) benchmark::DoNotOptimize(adsb::crc24(frame));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 14);
}
BENCHMARK(BM_Crc24);

void BM_CrcRepair1Bit(benchmark::State& state) {
  auto frame = sample_frame();
  frame[5] ^= 0x08;  // single bit error
  for (auto _ : state) {
    auto work = frame;
    benchmark::DoNotOptimize(adsb::repair_frame(work, 1));
  }
}
BENCHMARK(BM_CrcRepair1Bit);

void BM_CrcRepair2Bit(benchmark::State& state) {
  auto frame = sample_frame();
  frame[5] ^= 0x08;
  frame[9] ^= 0x80;
  for (auto _ : state) {
    auto work = frame;
    benchmark::DoNotOptimize(adsb::repair_frame(work, 2));
  }
}
BENCHMARK(BM_CrcRepair2Bit);

void BM_CprEncode(benchmark::State& state) {
  double lat = 37.87;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adsb::cpr_encode(lat, -122.27, false));
    lat += 1e-6;
  }
}
BENCHMARK(BM_CprEncode);

void BM_CprGlobalDecode(benchmark::State& state) {
  const auto even = adsb::cpr_encode(37.87, -122.27, false);
  const auto odd = adsb::cpr_encode(37.87, -122.27, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(adsb::cpr_global_decode(even, odd, true));
}
BENCHMARK(BM_CprGlobalDecode);

void BM_BuildPositionFrame(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        adsb::build_position_frame(0xA1B2C3, 37.87, -122.27, 35000.0, false));
}
BENCHMARK(BM_BuildPositionFrame);

void BM_ParseFrame(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) benchmark::DoNotOptimize(adsb::parse_frame(frame));
}
BENCHMARK(BM_ParseFrame);

void BM_Modulate(benchmark::State& state) {
  const auto frame = sample_frame();
  dsp::Buffer buf(adsb::kFrameSamples, {0.0f, 0.0f});
  for (auto _ : state) {
    adsb::modulate_into(frame, 0.05, 0.0, 10e3, 0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_Modulate);

/// Demod throughput over a realistic second of air: noise + ~25 frames.
void BM_DemodThroughput(benchmark::State& state) {
  const auto msgs = static_cast<std::size_t>(state.range(0));
  dsp::Buffer buf(1 << 20, {0.0f, 0.0f});
  util::Rng rng(1);
  for (auto& s : buf)
    s = dsp::Sample(static_cast<float>(rng.normal(0.0, 1.5e-3)),
                    static_cast<float>(rng.normal(0.0, 1.5e-3)));
  for (std::size_t i = 0; i < msgs; ++i) {
    const auto frame = adsb::build_ident_frame(
        static_cast<std::uint32_t>(0x100000 + i), "BENCH");
    adsb::modulate_into(frame, 0.05, 0.0, 0.0,
                        20000 + i * (buf.size() - 40000) / std::max<std::size_t>(msgs, 1),
                        buf);
  }
  const adsb::PpmDemodulator demod;
  for (auto _ : state) benchmark::DoNotOptimize(demod.process(buf));
  // Samples per second of wall time -> must exceed 2e6 for real-time.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_DemodThroughput)->Arg(0)->Arg(25)->Arg(100);

void BM_DecoderFeed(benchmark::State& state) {
  dsp::Buffer buf(1 << 18, {0.0f, 0.0f});
  util::Rng rng(2);
  for (auto& s : buf)
    s = dsp::Sample(static_cast<float>(rng.normal(0.0, 1.5e-3)),
                    static_cast<float>(rng.normal(0.0, 1.5e-3)));
  for (int i = 0; i < 10; ++i)
    adsb::modulate_into(adsb::build_position_frame(0xA00000 + i, 37.9, -122.3,
                                                   30000.0, i % 2 == 1),
                        0.05, 0.0, 0.0, 5000 + i * 25000, buf);
  for (auto _ : state) {
    adsb::Decoder decoder;
    benchmark::DoNotOptimize(decoder.feed(buf, 0.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_DecoderFeed);

}  // namespace

BENCHMARK_MAIN();
