// Figure 2 — "Mobile network experiment testbed".
//
// The paper's Figure 2 is a map: five cellular towers 500-1000 m from the
// experiment site. This harness prints the reconstructed geometry — tower
// positions (azimuth/distance from each site), bands, EARFCNs and EIRP —
// plus the TV stations and the three sensor sites, so the spatial setup of
// every other experiment is auditable.
#include <iostream>

#include "scenario/testbed.hpp"
#include "tv/channels.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Figure 2: testbed geometry (towers, stations, sites)\n";
  std::cout << "==========================================================\n";
  const auto origin = scenario::testbed_origin();
  std::cout << "testbed origin: " << util::format_fixed(origin.lat_deg, 4) << ", "
            << util::format_fixed(origin.lon_deg, 4) << "\n\n";

  util::Table towers({"tower", "operator", "band", "EARFCN", "DL MHz", "azimuth",
                      "distance m", "EIRP dBm"});
  int index = 1;
  // Keep the database alive across the loop: cells() returns a reference
  // into it, and C++20 range-for does not extend a temporary's lifetime.
  const auto cell_db = scenario::make_cell_database();
  for (const auto& cell : cell_db.cells()) {
    towers.add_row({
        "Tower " + std::to_string(index++),
        cell.operator_name,
        "B" + std::to_string(cell.band),
        std::to_string(cell.earfcn),
        util::format_fixed(cell.dl_freq_hz / 1e6, 0),
        util::format_fixed(geo::bearing_deg(origin, cell.position), 0),
        util::format_fixed(geo::haversine_m(origin, cell.position), 0),
        util::format_fixed(cell.eirp_dbm, 0),
    });
  }
  towers.set_title("Cellular towers (paper: downlinks 731/1970/2145/2660/2680 MHz,"
                   " 500-1000 m out)");
  towers.print(std::cout);

  util::Table stations({"station", "RF ch", "center MHz", "azimuth", "distance km",
                        "ERP dBm"});
  for (const auto& st : scenario::make_tv_stations()) {
    const auto ch = tv::channel_for_frequency(st.carrier_hz);
    stations.add_row({
        "TV-" + std::to_string(ch.value_or(0)),
        std::to_string(ch.value_or(0)),
        util::format_fixed(st.carrier_hz / 1e6, 0),
        util::format_fixed(geo::bearing_deg(origin, st.position), 0),
        util::format_fixed(geo::haversine_m(origin, st.position) / 1e3, 0),
        util::format_fixed(st.eirp_dbm, 0),
    });
  }
  stations.set_title("\nBroadcast TV stations (paper Fig. 4 channels, <= 50 km)");
  stations.print(std::cout);

  util::Table sites({"site", "alt m", "field of view @1090 MHz", "notes"});
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor}) {
    const auto setup = scenario::make_site(site);
    sites.add_row({
        scenario::site_name(site),
        util::format_fixed(setup.position.alt_m, 0),
        setup.obstructions->clear_sectors(1090e6).to_string(),
        site == scenario::Site::kRooftop
            ? "6th-floor roof, open west"
            : site == scenario::Site::kWindow ? "5th floor, coated window"
                                              : "5th floor interior, omni walls",
    });
  }
  sites.set_title("\nSensor sites (paper locations 1-3)");
  sites.print(std::cout);
  return 0;
}
