// Figure 4 — "Broadcast TV: different frequency bands".
//
// Reproduces the paper's bar chart: received signal strength (dBFS) of six
// ATSC channels (213/473/521/545/587/605 MHz) measured at the three sites
// through the full waveform pipeline — fixed-gain SDR capture, band-pass
// FIR, magnitude-squared through a long moving average (Parseval), exactly
// the paper's GNU Radio flowgraph.
//
// Shape to match: the rooftop is strongest nearly everywhere; the window
// and indoor sites are attenuated but still usable below 600 MHz; the
// exception is 521 MHz, where the tower sits in the window's field of view
// and the behind-window reading matches the rooftop (the paper's anomaly).
#include <iostream>
#include <map>
#include <vector>

#include "scenario/testbed.hpp"
#include "tv/power_meter.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Figure 4: broadcast TV received power (dBFS) x sites\n";
  std::cout << "==========================================================\n";

  const auto world = scenario::make_world(2023);
  const auto channels = scenario::figure4_channels();
  const tv::PowerMeter meter;  // fixed gain, paper-style

  std::map<scenario::Site, std::vector<tv::ChannelPowerReading>> readings;
  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor}) {
    const auto setup = scenario::make_site(site, 2023);
    auto device = scenario::make_node(setup, world, 2023);
    readings[site] = meter.sweep(*device, channels);
  }

  util::Table table({"channel", "center MHz", "rooftop dBFS", "window dBFS",
                     "indoor dBFS"});
  for (std::size_t i = 0; i < channels.size(); ++i) {
    table.add_row({
        std::to_string(channels[i]),
        util::format_fixed(readings[scenario::Site::kRooftop][i].center_hz / 1e6, 0),
        util::format_fixed(readings[scenario::Site::kRooftop][i].power_dbfs, 1),
        util::format_fixed(readings[scenario::Site::kWindow][i].power_dbfs, 1),
        util::format_fixed(readings[scenario::Site::kIndoor][i].power_dbfs, 1),
    });
  }
  table.set_title("Channel power via band-pass + Parseval moving average");
  table.print(std::cout);

  for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                    scenario::Site::kIndoor}) {
    std::cout << "\n" << scenario::site_name(site) << ":\n";
    for (const auto& r : readings[site])
      std::cout << "  " << util::format_fixed(r.center_hz / 1e6, 0) << " MHz "
                << util::ascii_bar(r.power_dbfs, -70.0, -10.0, 40) << " "
                << util::format_fixed(r.power_dbfs, 1) << " dBFS\n";
  }

  // Shape checks.
  auto dbfs = [&](scenario::Site site, int ch) {
    for (const auto& r : readings[site])
      if (r.rf_channel == ch) return r.power_dbfs;
    return -999.0;
  };
  int rooftop_best = 0;
  for (int ch : channels) {
    if (ch == 22) continue;  // the anomaly channel
    if (dbfs(scenario::Site::kRooftop, ch) >
        std::max(dbfs(scenario::Site::kWindow, ch),
                 dbfs(scenario::Site::kIndoor, ch)))
      ++rooftop_best;
  }
  const double anomaly_gap = std::abs(dbfs(scenario::Site::kWindow, 22) -
                                      dbfs(scenario::Site::kRooftop, 22));
  std::cout << "\nShape check vs paper (Fig. 4):\n"
            << "  rooftop strongest on non-anomaly channels : " << rooftop_best
            << "/5\n"
            << "  521 MHz anomaly (|window - rooftop|)      : "
            << util::format_fixed(anomaly_gap, 1)
            << " dB (paper: window ~= rooftop; tower in window FoV)\n"
            << "  window/indoor still receive sub-600 MHz   : "
            << ((dbfs(scenario::Site::kIndoor, 13) > -70.0 &&
                 dbfs(scenario::Site::kWindow, 13) > -70.0)
                    ? "YES"
                    : "NO")
            << " (usable for sub-600 MHz monitoring)\n";
  return 0;
}
