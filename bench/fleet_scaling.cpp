// Fleet calibration scaling: nodes/sec at 1, 2, 4, 8 worker threads
// (override with --threads=1,2,4) over a 20-node fleet, verifying that the
// stage-graph executor's output is bitwise-identical to the serial run
// (per-node device construction and per-(node,stage) RNG seeding leave no
// shared mutable state to race on).
//
// Speedup tracks the host's core count; on a single-core container every
// row degenerates to ~1x while the identity check still bites.
//
// Results are also written to BENCH_fleet.json (override with --json=PATH;
// schema v3, documented in DESIGN.md §8/§12: per-row executor tallies
// threads_used / tasks_run / tasks_stolen ride along with the timings).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "calib/fleet.hpp"
#include "scenario/testbed.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

constexpr std::uint64_t kSeed = 13;
constexpr std::size_t kFleetSize = 20;

std::vector<calib::FleetJob> make_jobs(const calib::WorldModel& world) {
  std::vector<calib::FleetJob> jobs;
  for (std::size_t i = 0; i < kFleetSize; ++i) {
    const auto site = static_cast<scenario::Site>(i % 3);
    calib::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.min_freq_hz = 100e6;
    job.claims.max_freq_hz = 6e9;
    job.claims.claims_outdoor = site != scenario::Site::kIndoor;
    job.claims.claims_omnidirectional = i % 5 == 0;
    job.make_device = [&world, site]() {
      return scenario::make_owned_node(site, world, kSeed);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// The bitwise fingerprint of one calibration outcome.
struct NodeFingerprint {
  double trust_score;
  double fov_open_fraction;
  double mean_attenuation_db;
};

std::vector<NodeFingerprint> fingerprints(const calib::NodeRegistry& registry) {
  std::vector<NodeFingerprint> out;
  registry.for_each_report([&](const calib::CalibrationReport& report) {
    out.push_back({report.trust.score, report.fov.open_fraction_deg,
                   report.frequency_response.mean_attenuation_db});
  });
  return out;
}

bool bitwise_equal(const std::vector<NodeFingerprint>& a,
                   const std::vector<NodeFingerprint>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeFingerprint)) == 0;
}

struct ScalingRow {
  unsigned threads = 0;
  double wall_s = 0.0;
  double nodes_per_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
  bool oversubscribed = false;  // threads > real hardware threads
  calib::ExecutorStats executor;  // stage-graph executor tallies for this row
};

std::vector<unsigned> parse_threads(const std::string& list) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok = list.substr(pos, comma == std::string::npos
                                                 ? std::string::npos
                                                 : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool write_bench_json(const std::string& path, const std::vector<ScalingRow>& rows,
                      const calib::FleetStageStats& serial_stages) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "fleet_scaling: cannot write " << path << "\n";
    return false;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench");
  w.value("fleet_scaling");
  w.key("schema_version");
  w.value(3);
  w.key("fleet_size");
  w.value(kFleetSize);
  // Real host parallelism: rows sweeping more threads than this are
  // annotated oversubscribed (their speedup is not expected to move).
  w.key("hardware_threads");
  w.value(static_cast<std::size_t>(std::thread::hardware_concurrency()));
  w.key("results");
  w.begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.key("threads");
    w.value(static_cast<std::size_t>(row.threads));
    w.key("wall_s");
    w.value(row.wall_s);
    w.key("nodes_per_s");
    w.value(row.nodes_per_s);
    w.key("speedup");
    w.value(row.speedup);
    w.key("identical_to_serial");
    w.value(row.identical);
    w.key("oversubscribed");
    w.value(row.oversubscribed);
    // Stage-graph executor tallies (schema v3): how many graph tasks ran
    // and how many migrated between workers via stealing.
    w.key("threads_used");
    w.value(static_cast<std::size_t>(row.executor.threads_used));
    w.key("tasks_run");
    w.value(row.executor.tasks_run);
    w.key("tasks_stolen");
    w.value(row.executor.tasks_stolen);
    w.end_object();
  }
  w.end_array();
  // Where per-node calibration time goes (serial run), so capture-path
  // and estimator PRs can see which stage they moved.
  w.key("stage_metrics_serial");
  w.begin_array();
  for (const auto& stage : serial_stages.rows) {
    w.begin_object();
    w.key("stage");
    w.value(calib::to_string(stage.stage));
    w.key("nodes");
    w.value(stage.nodes);
    w.key("p50_ms");
    w.value(stage.p50_ms);
    w.key("p90_ms");
    w.value(stage.p90_ms);
    w.key("max_ms");
    w.value(stage.max_ms);
    w.key("mean_ms");
    w.value(stage.mean_ms);
    w.key("samples_captured");
    w.value(stage.samples_captured);
    w.key("frames_decoded");
    w.value(stage.frames_decoded);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fleet.json";
  std::vector<unsigned> thread_list{1u, 2u, 4u, 8u};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--threads=", 0) == 0) thread_list = parse_threads(arg.substr(10));
  }
  if (thread_list.empty() || thread_list.front() != 1u) {
    // The serial row is the identity + speedup baseline; it must come first.
    thread_list.insert(thread_list.begin(), 1u);
  }

  const auto world = scenario::make_world(kSeed);

  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;

  std::cout << "Fleet scaling: " << kFleetSize << " nodes, hardware threads = "
            << std::thread::hardware_concurrency() << "\n";

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::vector<NodeFingerprint> serial;
  double serial_rate = 0.0;
  std::vector<ScalingRow> rows;
  calib::FleetStageStats serial_stages;

  util::Table table({"threads", "wall s", "nodes/s", "speedup", "stolen", "identical"});
  for (const unsigned threads : thread_list) {
    calib::RunConfig run;
    run.pipeline = cfg;
    run.executor.threads = threads;
    calib::FleetCalibrator calibrator(world, run);
    calib::NodeRegistry registry;
    const auto summary = calibrator.run(make_jobs(world), registry);
    if (summary.calibrated != kFleetSize || summary.failed != 0) {
      std::cerr << "FAIL: batch incomplete at " << threads << " threads ("
                << summary.calibrated << " calibrated, " << summary.failed
                << " failed)\n";
      return 1;
    }

    const auto prints = fingerprints(registry);
    bool identical = true;
    if (threads == 1) {
      serial = prints;
      serial_rate = summary.nodes_per_s;
      serial_stages = summary.stage_stats;
    } else {
      identical = bitwise_equal(serial, prints);
    }
    const bool oversubscribed = threads > hw_threads;
    table.add_row({std::to_string(threads) + (oversubscribed ? "*" : ""),
                   util::format_fixed(summary.wall_s, 3),
                   util::format_fixed(summary.nodes_per_s, 2),
                   util::format_fixed(summary.nodes_per_s / serial_rate, 2) + "x",
                   std::to_string(summary.executor.tasks_stolen),
                   identical ? "yes" : "NO"});
    rows.push_back({threads, summary.wall_s, summary.nodes_per_s,
                    summary.nodes_per_s / serial_rate, identical, oversubscribed,
                    summary.executor});
    if (!identical) {
      std::cerr << "FAIL: parallel output diverged from serial at " << threads
                << " threads\n";
      return 1;
    }
  }
  table.set_title("FleetCalibrator scaling (link-budget fidelity)");
  table.print(std::cout);
  if (hw_threads < 8)
    std::cout << "* oversubscribed (more workers than the " << hw_threads
              << " hardware thread(s); speedup is not expected to move)\n";

  util::Table stage_table({"stage", "nodes", "p50 ms", "p90 ms", "mean ms"});
  for (const auto& row : serial_stages.rows)
    stage_table.add_row({calib::to_string(row.stage), std::to_string(row.nodes),
                         util::format_fixed(row.p50_ms, 1),
                         util::format_fixed(row.p90_ms, 1),
                         util::format_fixed(row.mean_ms, 1)});
  stage_table.set_title("Per-node stage timing (serial run)");
  stage_table.print(std::cout);

  return write_bench_json(json_path, rows, serial_stages) ? 0 : 1;
}
