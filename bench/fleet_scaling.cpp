// Fleet calibration scaling: nodes/sec at 1, 2, 4, 8 worker threads over a
// 20-node fleet, verifying that the parallel engine's output is
// bitwise-identical to the serial run (per-node device construction and
// RNG seeding leave no shared mutable state to race on).
//
// Speedup tracks the host's core count; on a single-core container every
// row degenerates to ~1x while the identity check still bites.
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "calib/fleet.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

namespace {

constexpr std::uint64_t kSeed = 13;
constexpr std::size_t kFleetSize = 20;

std::vector<calib::FleetJob> make_jobs(const calib::WorldModel& world) {
  std::vector<calib::FleetJob> jobs;
  for (std::size_t i = 0; i < kFleetSize; ++i) {
    const auto site = static_cast<scenario::Site>(i % 3);
    calib::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.min_freq_hz = 100e6;
    job.claims.max_freq_hz = 6e9;
    job.claims.claims_outdoor = site != scenario::Site::kIndoor;
    job.claims.claims_omnidirectional = i % 5 == 0;
    job.make_device = [&world, site]() {
      return scenario::make_owned_node(site, world, kSeed);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// The bitwise fingerprint of one calibration outcome.
struct NodeFingerprint {
  double trust_score;
  double fov_open_fraction;
  double mean_attenuation_db;
};

std::vector<NodeFingerprint> fingerprints(const calib::NodeRegistry& registry) {
  std::vector<NodeFingerprint> out;
  registry.for_each_report([&](const calib::CalibrationReport& report) {
    out.push_back({report.trust.score, report.fov.open_fraction_deg,
                   report.frequency_response.mean_attenuation_db});
  });
  return out;
}

bool bitwise_equal(const std::vector<NodeFingerprint>& a,
                   const std::vector<NodeFingerprint>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(NodeFingerprint)) == 0;
}

}  // namespace

int main() {
  const auto world = scenario::make_world(kSeed);

  calib::PipelineConfig cfg;
  cfg.survey.fidelity = calib::Fidelity::kLinkBudget;

  std::cout << "Fleet scaling: " << kFleetSize << " nodes, hardware threads = "
            << std::thread::hardware_concurrency() << "\n";

  std::vector<NodeFingerprint> serial;
  double serial_rate = 0.0;

  util::Table table({"threads", "wall s", "nodes/s", "speedup", "identical"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    calib::FleetConfig fleet_cfg;
    fleet_cfg.threads = threads;
    calib::FleetCalibrator calibrator(calib::CalibrationPipeline(world, cfg),
                                      fleet_cfg);
    calib::NodeRegistry registry;
    const auto summary = calibrator.run(make_jobs(world), registry);
    if (summary.calibrated != kFleetSize || summary.failed != 0) {
      std::cerr << "FAIL: batch incomplete at " << threads << " threads ("
                << summary.calibrated << " calibrated, " << summary.failed
                << " failed)\n";
      return 1;
    }

    const auto prints = fingerprints(registry);
    bool identical = true;
    if (threads == 1) {
      serial = prints;
      serial_rate = summary.nodes_per_s;
    } else {
      identical = bitwise_equal(serial, prints);
    }
    table.add_row({std::to_string(threads),
                   util::format_fixed(summary.wall_s, 3),
                   util::format_fixed(summary.nodes_per_s, 2),
                   util::format_fixed(summary.nodes_per_s / serial_rate, 2) + "x",
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "FAIL: parallel output diverged from serial at " << threads
                << " threads\n";
      return 1;
    }
  }
  table.set_title("FleetCalibrator scaling (link-budget fidelity)");
  table.print(std::cout);
  return 0;
}
