// Ablation — ground-truth and estimator assumptions (DESIGN.md §6):
//   1. Feed latency: FlightRadar24 reports ~10 s late (=2.5 km position
//      staleness at jet speeds). ICAO-keyed matching should be insensitive;
//      position error should grow linearly with latency.
//   2. Near-field gate: the paper's <20 km "received regardless of
//      direction" effect is directional noise — sweep the gate radius and
//      measure FoV estimation accuracy with and without it.
#include <iostream>

#include "calib/fov.hpp"
#include "scenario/testbed.hpp"
#include "util/table.hpp"

using namespace speccal;

int main() {
  std::cout << "==========================================================\n";
  std::cout << " Ablation: ground-truth latency & near-field gating\n";
  std::cout << "==========================================================\n";

  // ---- 1. Latency sweep ---------------------------------------------------
  util::Table latency_table({"latency s", "matched aircraft", "mean pos err km",
                             "max pos err km"});
  for (double latency : {0.0, 5.0, 10.0, 30.0, 60.0}) {
    const auto world = scenario::make_world(2023);
    const auto setup = scenario::make_site(scenario::Site::kRooftop, 2023);
    auto device = scenario::make_node(setup, world, 2023);
    airtraffic::GroundTruthService gt(*world.sky, latency);

    calib::SurveyConfig cfg;
    cfg.fidelity = calib::Fidelity::kLinkBudget;
    const auto result = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);

    double err_sum = 0.0, err_max = 0.0;
    std::size_t matched = 0;
    for (const auto& obs : result.observations) {
      if (!obs.received || !obs.decoded_position) continue;
      const double err =
          geo::haversine_m(obs.position, *obs.decoded_position) / 1e3;
      err_sum += err;
      err_max = std::max(err_max, err);
      ++matched;
    }
    latency_table.add_row({util::format_fixed(latency, 0), std::to_string(matched),
                           matched ? util::format_fixed(err_sum / matched, 2) : "-",
                           util::format_fixed(err_max, 2)});
  }
  latency_table.set_title(
      "1) Ground-truth feed latency (paper: FR24 ~10 s => <=2.5 km, fine for"
      " ICAO matching)");
  latency_table.print(std::cout);

  // ---- 2. Near-field gate sweep --------------------------------------------
  util::Table gate_table({"gate km", "rooftop acc", "window acc", "indoor acc"});
  for (double gate : {0.0, 10.0, 25.0, 40.0, 60.0}) {
    std::vector<std::string> row{util::format_fixed(gate, 0)};
    for (auto site : {scenario::Site::kRooftop, scenario::Site::kWindow,
                      scenario::Site::kIndoor}) {
      double acc = 0.0;
      constexpr int kRepeats = 5;
      for (int rep = 0; rep < kRepeats; ++rep) {
        const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(rep) * 17;
        const auto world = scenario::make_world(seed);
        const auto setup = scenario::make_site(site, seed);
        auto device = scenario::make_node(setup, world, seed);
        airtraffic::GroundTruthService gt(*world.sky, 10.0);
        calib::SurveyConfig cfg;
        cfg.fidelity = calib::Fidelity::kLinkBudget;
        const auto survey = calib::AdsbSurvey(cfg).run(*device, *world.sky, gt);
        calib::FovConfig fov_cfg;
        fov_cfg.near_field_km = gate;
        const auto est = calib::estimate_fov_knn(survey, fov_cfg);
        acc += calib::fov_accuracy(est,
                                   setup.obstructions->clear_sectors(1090e6));
      }
      row.push_back(util::format_fixed(acc / kRepeats, 3));
    }
    gate_table.add_row(std::move(row));
  }
  gate_table.set_title(
      "\n2) Near-field gate radius vs KNN FoV accuracy (5 skies each)");
  gate_table.print(std::cout);

  std::cout << "\nReading: latency leaves ICAO matching intact (same matched\n"
               "count) while position staleness grows ~0.2 km/s of latency;\n"
               "disabling the near-field gate (0 km) poisons the estimator with\n"
               "omnidirectional close-in receptions, and an over-aggressive\n"
               "gate (60 km) discards most of the evidence.\n";
  return 0;
}
