file(REMOVE_RECURSE
  "CMakeFiles/ablation_antenna.dir/ablation_antenna.cpp.o"
  "CMakeFiles/ablation_antenna.dir/ablation_antenna.cpp.o.d"
  "ablation_antenna"
  "ablation_antenna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_antenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
