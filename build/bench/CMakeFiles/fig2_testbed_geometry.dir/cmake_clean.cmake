file(REMOVE_RECURSE
  "CMakeFiles/fig2_testbed_geometry.dir/fig2_testbed_geometry.cpp.o"
  "CMakeFiles/fig2_testbed_geometry.dir/fig2_testbed_geometry.cpp.o.d"
  "fig2_testbed_geometry"
  "fig2_testbed_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_testbed_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
