# Empty compiler generated dependencies file for fig2_testbed_geometry.
# This may be replaced when dependencies are built.
