file(REMOVE_RECURSE
  "CMakeFiles/ablation_groundtruth.dir/ablation_groundtruth.cpp.o"
  "CMakeFiles/ablation_groundtruth.dir/ablation_groundtruth.cpp.o.d"
  "ablation_groundtruth"
  "ablation_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
