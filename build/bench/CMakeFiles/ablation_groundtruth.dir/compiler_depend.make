# Empty compiler generated dependencies file for ablation_groundtruth.
# This may be replaced when dependencies are built.
