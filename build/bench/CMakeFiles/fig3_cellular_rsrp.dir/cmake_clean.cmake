file(REMOVE_RECURSE
  "CMakeFiles/fig3_cellular_rsrp.dir/fig3_cellular_rsrp.cpp.o"
  "CMakeFiles/fig3_cellular_rsrp.dir/fig3_cellular_rsrp.cpp.o.d"
  "fig3_cellular_rsrp"
  "fig3_cellular_rsrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cellular_rsrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
