# Empty compiler generated dependencies file for fig3_cellular_rsrp.
# This may be replaced when dependencies are built.
