# Empty dependencies file for fig1_adsb_directionality.
# This may be replaced when dependencies are built.
