file(REMOVE_RECURSE
  "CMakeFiles/fig1_adsb_directionality.dir/fig1_adsb_directionality.cpp.o"
  "CMakeFiles/fig1_adsb_directionality.dir/fig1_adsb_directionality.cpp.o.d"
  "fig1_adsb_directionality"
  "fig1_adsb_directionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_adsb_directionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
