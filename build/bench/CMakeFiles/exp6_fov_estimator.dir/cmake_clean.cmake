file(REMOVE_RECURSE
  "CMakeFiles/exp6_fov_estimator.dir/exp6_fov_estimator.cpp.o"
  "CMakeFiles/exp6_fov_estimator.dir/exp6_fov_estimator.cpp.o.d"
  "exp6_fov_estimator"
  "exp6_fov_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_fov_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
