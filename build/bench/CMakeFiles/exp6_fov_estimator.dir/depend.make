# Empty dependencies file for exp6_fov_estimator.
# This may be replaced when dependencies are built.
