file(REMOVE_RECURSE
  "CMakeFiles/exp7_scheduler.dir/exp7_scheduler.cpp.o"
  "CMakeFiles/exp7_scheduler.dir/exp7_scheduler.cpp.o.d"
  "exp7_scheduler"
  "exp7_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp7_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
