# Empty dependencies file for exp7_scheduler.
# This may be replaced when dependencies are built.
