file(REMOVE_RECURSE
  "CMakeFiles/exp9_ml_classifier.dir/exp9_ml_classifier.cpp.o"
  "CMakeFiles/exp9_ml_classifier.dir/exp9_ml_classifier.cpp.o.d"
  "exp9_ml_classifier"
  "exp9_ml_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp9_ml_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
