# Empty compiler generated dependencies file for exp9_ml_classifier.
# This may be replaced when dependencies are built.
