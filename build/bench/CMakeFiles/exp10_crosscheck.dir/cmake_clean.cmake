file(REMOVE_RECURSE
  "CMakeFiles/exp10_crosscheck.dir/exp10_crosscheck.cpp.o"
  "CMakeFiles/exp10_crosscheck.dir/exp10_crosscheck.cpp.o.d"
  "exp10_crosscheck"
  "exp10_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
