# Empty dependencies file for exp10_crosscheck.
# This may be replaced when dependencies are built.
