file(REMOVE_RECURSE
  "CMakeFiles/ablation_decoder.dir/ablation_decoder.cpp.o"
  "CMakeFiles/ablation_decoder.dir/ablation_decoder.cpp.o.d"
  "ablation_decoder"
  "ablation_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
