# Empty compiler generated dependencies file for ablation_decoder.
# This may be replaced when dependencies are built.
