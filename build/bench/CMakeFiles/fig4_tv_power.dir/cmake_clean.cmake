file(REMOVE_RECURSE
  "CMakeFiles/fig4_tv_power.dir/fig4_tv_power.cpp.o"
  "CMakeFiles/fig4_tv_power.dir/fig4_tv_power.cpp.o.d"
  "fig4_tv_power"
  "fig4_tv_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tv_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
