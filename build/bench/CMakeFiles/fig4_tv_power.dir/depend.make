# Empty dependencies file for fig4_tv_power.
# This may be replaced when dependencies are built.
