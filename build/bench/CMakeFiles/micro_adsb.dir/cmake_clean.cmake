file(REMOVE_RECURSE
  "CMakeFiles/micro_adsb.dir/micro_adsb.cpp.o"
  "CMakeFiles/micro_adsb.dir/micro_adsb.cpp.o.d"
  "micro_adsb"
  "micro_adsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_adsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
