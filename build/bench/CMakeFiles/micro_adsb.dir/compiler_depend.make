# Empty compiler generated dependencies file for micro_adsb.
# This may be replaced when dependencies are built.
