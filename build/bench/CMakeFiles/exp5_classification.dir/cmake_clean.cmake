file(REMOVE_RECURSE
  "CMakeFiles/exp5_classification.dir/exp5_classification.cpp.o"
  "CMakeFiles/exp5_classification.dir/exp5_classification.cpp.o.d"
  "exp5_classification"
  "exp5_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
