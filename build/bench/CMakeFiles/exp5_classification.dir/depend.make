# Empty dependencies file for exp5_classification.
# This may be replaced when dependencies are built.
