# Empty compiler generated dependencies file for exp5_classification.
# This may be replaced when dependencies are built.
