file(REMOVE_RECURSE
  "CMakeFiles/exp8_cbrs_verification.dir/exp8_cbrs_verification.cpp.o"
  "CMakeFiles/exp8_cbrs_verification.dir/exp8_cbrs_verification.cpp.o.d"
  "exp8_cbrs_verification"
  "exp8_cbrs_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp8_cbrs_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
