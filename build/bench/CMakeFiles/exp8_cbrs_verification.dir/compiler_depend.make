# Empty compiler generated dependencies file for exp8_cbrs_verification.
# This may be replaced when dependencies are built.
