file(REMOVE_RECURSE
  "CMakeFiles/cbrs_verify.dir/cbrs_verify.cpp.o"
  "CMakeFiles/cbrs_verify.dir/cbrs_verify.cpp.o.d"
  "cbrs_verify"
  "cbrs_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbrs_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
