# Empty compiler generated dependencies file for cbrs_verify.
# This may be replaced when dependencies are built.
