file(REMOVE_RECURSE
  "CMakeFiles/adsb_survey.dir/adsb_survey.cpp.o"
  "CMakeFiles/adsb_survey.dir/adsb_survey.cpp.o.d"
  "adsb_survey"
  "adsb_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsb_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
