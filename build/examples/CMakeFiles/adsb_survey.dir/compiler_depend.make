# Empty compiler generated dependencies file for adsb_survey.
# This may be replaced when dependencies are built.
