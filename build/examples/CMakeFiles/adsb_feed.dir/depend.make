# Empty dependencies file for adsb_feed.
# This may be replaced when dependencies are built.
