file(REMOVE_RECURSE
  "CMakeFiles/adsb_feed.dir/adsb_feed.cpp.o"
  "CMakeFiles/adsb_feed.dir/adsb_feed.cpp.o.d"
  "adsb_feed"
  "adsb_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsb_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
