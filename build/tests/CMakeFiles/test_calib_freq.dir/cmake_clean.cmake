file(REMOVE_RECURSE
  "CMakeFiles/test_calib_freq.dir/test_calib_freq.cpp.o"
  "CMakeFiles/test_calib_freq.dir/test_calib_freq.cpp.o.d"
  "test_calib_freq"
  "test_calib_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
