# Empty compiler generated dependencies file for test_calib_freq.
# This may be replaced when dependencies are built.
