file(REMOVE_RECURSE
  "CMakeFiles/test_calib_fov.dir/test_calib_fov.cpp.o"
  "CMakeFiles/test_calib_fov.dir/test_calib_fov.cpp.o.d"
  "test_calib_fov"
  "test_calib_fov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_fov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
