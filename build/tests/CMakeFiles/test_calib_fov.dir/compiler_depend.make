# Empty compiler generated dependencies file for test_calib_fov.
# This may be replaced when dependencies are built.
