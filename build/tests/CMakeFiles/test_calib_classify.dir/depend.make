# Empty dependencies file for test_calib_classify.
# This may be replaced when dependencies are built.
