file(REMOVE_RECURSE
  "CMakeFiles/test_calib_classify.dir/test_calib_classify.cpp.o"
  "CMakeFiles/test_calib_classify.dir/test_calib_classify.cpp.o.d"
  "test_calib_classify"
  "test_calib_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
