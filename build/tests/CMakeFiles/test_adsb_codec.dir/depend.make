# Empty dependencies file for test_adsb_codec.
# This may be replaced when dependencies are built.
