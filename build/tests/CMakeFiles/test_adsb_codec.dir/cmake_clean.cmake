file(REMOVE_RECURSE
  "CMakeFiles/test_adsb_codec.dir/test_adsb_codec.cpp.o"
  "CMakeFiles/test_adsb_codec.dir/test_adsb_codec.cpp.o.d"
  "test_adsb_codec"
  "test_adsb_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adsb_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
