file(REMOVE_RECURSE
  "CMakeFiles/test_tv.dir/test_tv.cpp.o"
  "CMakeFiles/test_tv.dir/test_tv.cpp.o.d"
  "test_tv"
  "test_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
