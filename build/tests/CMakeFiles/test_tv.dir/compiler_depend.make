# Empty compiler generated dependencies file for test_tv.
# This may be replaced when dependencies are built.
