
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tv.cpp" "tests/CMakeFiles/test_tv.dir/test_tv.cpp.o" "gcc" "tests/CMakeFiles/test_tv.dir/test_tv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/speccal_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/cbrs/CMakeFiles/speccal_cbrs.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/speccal_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/speccal_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/airtraffic/CMakeFiles/speccal_airtraffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/speccal_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/speccal_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/adsb/CMakeFiles/speccal_adsb.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/speccal_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/speccal_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/speccal_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
