file(REMOVE_RECURSE
  "CMakeFiles/test_airtraffic.dir/test_airtraffic.cpp.o"
  "CMakeFiles/test_airtraffic.dir/test_airtraffic.cpp.o.d"
  "test_airtraffic"
  "test_airtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
