# Empty compiler generated dependencies file for test_airtraffic.
# This may be replaced when dependencies are built.
