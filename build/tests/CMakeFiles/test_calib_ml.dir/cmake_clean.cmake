file(REMOVE_RECURSE
  "CMakeFiles/test_calib_ml.dir/test_calib_ml.cpp.o"
  "CMakeFiles/test_calib_ml.dir/test_calib_ml.cpp.o.d"
  "test_calib_ml"
  "test_calib_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
