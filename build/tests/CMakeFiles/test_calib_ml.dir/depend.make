# Empty dependencies file for test_calib_ml.
# This may be replaced when dependencies are built.
