file(REMOVE_RECURSE
  "CMakeFiles/test_calib_survey.dir/test_calib_survey.cpp.o"
  "CMakeFiles/test_calib_survey.dir/test_calib_survey.cpp.o.d"
  "test_calib_survey"
  "test_calib_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
