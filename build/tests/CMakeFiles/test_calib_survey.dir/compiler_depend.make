# Empty compiler generated dependencies file for test_calib_survey.
# This may be replaced when dependencies are built.
