# Empty dependencies file for test_cbrs.
# This may be replaced when dependencies are built.
