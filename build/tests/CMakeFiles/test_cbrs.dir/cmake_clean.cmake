file(REMOVE_RECURSE
  "CMakeFiles/test_cbrs.dir/test_cbrs.cpp.o"
  "CMakeFiles/test_cbrs.dir/test_cbrs.cpp.o.d"
  "test_cbrs"
  "test_cbrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
