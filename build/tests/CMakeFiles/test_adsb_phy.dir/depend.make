# Empty dependencies file for test_adsb_phy.
# This may be replaced when dependencies are built.
