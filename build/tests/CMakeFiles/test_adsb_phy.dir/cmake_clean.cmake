file(REMOVE_RECURSE
  "CMakeFiles/test_adsb_phy.dir/test_adsb_phy.cpp.o"
  "CMakeFiles/test_adsb_phy.dir/test_adsb_phy.cpp.o.d"
  "test_adsb_phy"
  "test_adsb_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adsb_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
