file(REMOVE_RECURSE
  "CMakeFiles/test_calib_trust.dir/test_calib_trust.cpp.o"
  "CMakeFiles/test_calib_trust.dir/test_calib_trust.cpp.o.d"
  "test_calib_trust"
  "test_calib_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
