# Empty compiler generated dependencies file for test_calib_trust.
# This may be replaced when dependencies are built.
