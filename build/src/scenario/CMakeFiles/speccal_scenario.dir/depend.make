# Empty dependencies file for speccal_scenario.
# This may be replaced when dependencies are built.
