file(REMOVE_RECURSE
  "CMakeFiles/speccal_scenario.dir/testbed.cpp.o"
  "CMakeFiles/speccal_scenario.dir/testbed.cpp.o.d"
  "libspeccal_scenario.a"
  "libspeccal_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
