file(REMOVE_RECURSE
  "libspeccal_scenario.a"
)
