# Empty dependencies file for speccal_util.
# This may be replaced when dependencies are built.
