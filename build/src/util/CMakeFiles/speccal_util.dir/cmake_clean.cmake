file(REMOVE_RECURSE
  "CMakeFiles/speccal_util.dir/json.cpp.o"
  "CMakeFiles/speccal_util.dir/json.cpp.o.d"
  "CMakeFiles/speccal_util.dir/rng.cpp.o"
  "CMakeFiles/speccal_util.dir/rng.cpp.o.d"
  "CMakeFiles/speccal_util.dir/table.cpp.o"
  "CMakeFiles/speccal_util.dir/table.cpp.o.d"
  "libspeccal_util.a"
  "libspeccal_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
