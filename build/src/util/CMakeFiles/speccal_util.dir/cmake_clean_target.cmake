file(REMOVE_RECURSE
  "libspeccal_util.a"
)
