# Empty compiler generated dependencies file for speccal_util.
# This may be replaced when dependencies are built.
