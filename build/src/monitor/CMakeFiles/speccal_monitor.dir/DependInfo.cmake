
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/occupancy.cpp" "src/monitor/CMakeFiles/speccal_monitor.dir/occupancy.cpp.o" "gcc" "src/monitor/CMakeFiles/speccal_monitor.dir/occupancy.cpp.o.d"
  "/root/repo/src/monitor/rem.cpp" "src/monitor/CMakeFiles/speccal_monitor.dir/rem.cpp.o" "gcc" "src/monitor/CMakeFiles/speccal_monitor.dir/rem.cpp.o.d"
  "/root/repo/src/monitor/scanner.cpp" "src/monitor/CMakeFiles/speccal_monitor.dir/scanner.cpp.o" "gcc" "src/monitor/CMakeFiles/speccal_monitor.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdr/CMakeFiles/speccal_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/speccal_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/speccal_prop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
