file(REMOVE_RECURSE
  "CMakeFiles/speccal_monitor.dir/occupancy.cpp.o"
  "CMakeFiles/speccal_monitor.dir/occupancy.cpp.o.d"
  "CMakeFiles/speccal_monitor.dir/rem.cpp.o"
  "CMakeFiles/speccal_monitor.dir/rem.cpp.o.d"
  "CMakeFiles/speccal_monitor.dir/scanner.cpp.o"
  "CMakeFiles/speccal_monitor.dir/scanner.cpp.o.d"
  "libspeccal_monitor.a"
  "libspeccal_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
