# Empty compiler generated dependencies file for speccal_monitor.
# This may be replaced when dependencies are built.
