file(REMOVE_RECURSE
  "libspeccal_monitor.a"
)
