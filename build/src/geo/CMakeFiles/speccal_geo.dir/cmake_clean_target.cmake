file(REMOVE_RECURSE
  "libspeccal_geo.a"
)
