
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/sector.cpp" "src/geo/CMakeFiles/speccal_geo.dir/sector.cpp.o" "gcc" "src/geo/CMakeFiles/speccal_geo.dir/sector.cpp.o.d"
  "/root/repo/src/geo/wgs84.cpp" "src/geo/CMakeFiles/speccal_geo.dir/wgs84.cpp.o" "gcc" "src/geo/CMakeFiles/speccal_geo.dir/wgs84.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
