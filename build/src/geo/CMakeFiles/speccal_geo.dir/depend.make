# Empty dependencies file for speccal_geo.
# This may be replaced when dependencies are built.
