file(REMOVE_RECURSE
  "CMakeFiles/speccal_geo.dir/sector.cpp.o"
  "CMakeFiles/speccal_geo.dir/sector.cpp.o.d"
  "CMakeFiles/speccal_geo.dir/wgs84.cpp.o"
  "CMakeFiles/speccal_geo.dir/wgs84.cpp.o.d"
  "libspeccal_geo.a"
  "libspeccal_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
