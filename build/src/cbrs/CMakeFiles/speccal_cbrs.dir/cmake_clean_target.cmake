file(REMOVE_RECURSE
  "libspeccal_cbrs.a"
)
