file(REMOVE_RECURSE
  "CMakeFiles/speccal_cbrs.dir/verify.cpp.o"
  "CMakeFiles/speccal_cbrs.dir/verify.cpp.o.d"
  "libspeccal_cbrs.a"
  "libspeccal_cbrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_cbrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
