# Empty dependencies file for speccal_cbrs.
# This may be replaced when dependencies are built.
