file(REMOVE_RECURSE
  "libspeccal_cellular.a"
)
