# Empty compiler generated dependencies file for speccal_cellular.
# This may be replaced when dependencies are built.
