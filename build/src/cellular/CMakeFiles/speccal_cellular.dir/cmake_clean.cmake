file(REMOVE_RECURSE
  "CMakeFiles/speccal_cellular.dir/bands.cpp.o"
  "CMakeFiles/speccal_cellular.dir/bands.cpp.o.d"
  "CMakeFiles/speccal_cellular.dir/pss.cpp.o"
  "CMakeFiles/speccal_cellular.dir/pss.cpp.o.d"
  "CMakeFiles/speccal_cellular.dir/scanner.cpp.o"
  "CMakeFiles/speccal_cellular.dir/scanner.cpp.o.d"
  "CMakeFiles/speccal_cellular.dir/tower.cpp.o"
  "CMakeFiles/speccal_cellular.dir/tower.cpp.o.d"
  "libspeccal_cellular.a"
  "libspeccal_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
