file(REMOVE_RECURSE
  "libspeccal_tv.a"
)
