file(REMOVE_RECURSE
  "CMakeFiles/speccal_tv.dir/channels.cpp.o"
  "CMakeFiles/speccal_tv.dir/channels.cpp.o.d"
  "CMakeFiles/speccal_tv.dir/power_meter.cpp.o"
  "CMakeFiles/speccal_tv.dir/power_meter.cpp.o.d"
  "libspeccal_tv.a"
  "libspeccal_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
