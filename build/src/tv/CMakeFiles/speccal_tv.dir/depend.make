# Empty dependencies file for speccal_tv.
# This may be replaced when dependencies are built.
