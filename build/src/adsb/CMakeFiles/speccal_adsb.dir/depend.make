# Empty dependencies file for speccal_adsb.
# This may be replaced when dependencies are built.
