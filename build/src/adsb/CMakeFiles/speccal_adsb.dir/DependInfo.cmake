
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adsb/altitude.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/altitude.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/altitude.cpp.o.d"
  "/root/repo/src/adsb/callsign.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/callsign.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/callsign.cpp.o.d"
  "/root/repo/src/adsb/cpr.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/cpr.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/cpr.cpp.o.d"
  "/root/repo/src/adsb/crc.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/crc.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/crc.cpp.o.d"
  "/root/repo/src/adsb/decoder.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/decoder.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/decoder.cpp.o.d"
  "/root/repo/src/adsb/frame.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/frame.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/frame.cpp.o.d"
  "/root/repo/src/adsb/io.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/io.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/io.cpp.o.d"
  "/root/repo/src/adsb/ppm.cpp" "src/adsb/CMakeFiles/speccal_adsb.dir/ppm.cpp.o" "gcc" "src/adsb/CMakeFiles/speccal_adsb.dir/ppm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/speccal_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
