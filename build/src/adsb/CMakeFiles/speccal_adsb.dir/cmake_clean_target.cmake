file(REMOVE_RECURSE
  "libspeccal_adsb.a"
)
