file(REMOVE_RECURSE
  "CMakeFiles/speccal_adsb.dir/altitude.cpp.o"
  "CMakeFiles/speccal_adsb.dir/altitude.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/callsign.cpp.o"
  "CMakeFiles/speccal_adsb.dir/callsign.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/cpr.cpp.o"
  "CMakeFiles/speccal_adsb.dir/cpr.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/crc.cpp.o"
  "CMakeFiles/speccal_adsb.dir/crc.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/decoder.cpp.o"
  "CMakeFiles/speccal_adsb.dir/decoder.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/frame.cpp.o"
  "CMakeFiles/speccal_adsb.dir/frame.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/io.cpp.o"
  "CMakeFiles/speccal_adsb.dir/io.cpp.o.d"
  "CMakeFiles/speccal_adsb.dir/ppm.cpp.o"
  "CMakeFiles/speccal_adsb.dir/ppm.cpp.o.d"
  "libspeccal_adsb.a"
  "libspeccal_adsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_adsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
