file(REMOVE_RECURSE
  "libspeccal_airtraffic.a"
)
