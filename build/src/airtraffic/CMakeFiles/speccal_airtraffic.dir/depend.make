# Empty dependencies file for speccal_airtraffic.
# This may be replaced when dependencies are built.
