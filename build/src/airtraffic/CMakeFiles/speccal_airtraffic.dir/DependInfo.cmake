
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airtraffic/adsb_source.cpp" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/adsb_source.cpp.o" "gcc" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/adsb_source.cpp.o.d"
  "/root/repo/src/airtraffic/aircraft.cpp" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/aircraft.cpp.o" "gcc" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/aircraft.cpp.o.d"
  "/root/repo/src/airtraffic/groundtruth.cpp" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/groundtruth.cpp.o" "gcc" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/groundtruth.cpp.o.d"
  "/root/repo/src/airtraffic/sky.cpp" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/sky.cpp.o" "gcc" "src/airtraffic/CMakeFiles/speccal_airtraffic.dir/sky.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adsb/CMakeFiles/speccal_adsb.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/speccal_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/speccal_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/speccal_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
