file(REMOVE_RECURSE
  "CMakeFiles/speccal_airtraffic.dir/adsb_source.cpp.o"
  "CMakeFiles/speccal_airtraffic.dir/adsb_source.cpp.o.d"
  "CMakeFiles/speccal_airtraffic.dir/aircraft.cpp.o"
  "CMakeFiles/speccal_airtraffic.dir/aircraft.cpp.o.d"
  "CMakeFiles/speccal_airtraffic.dir/groundtruth.cpp.o"
  "CMakeFiles/speccal_airtraffic.dir/groundtruth.cpp.o.d"
  "CMakeFiles/speccal_airtraffic.dir/sky.cpp.o"
  "CMakeFiles/speccal_airtraffic.dir/sky.cpp.o.d"
  "libspeccal_airtraffic.a"
  "libspeccal_airtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_airtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
