# CMake generated Testfile for 
# Source directory: /root/repo/src/airtraffic
# Build directory: /root/repo/build/src/airtraffic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
