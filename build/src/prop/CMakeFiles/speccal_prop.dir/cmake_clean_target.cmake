file(REMOVE_RECURSE
  "libspeccal_prop.a"
)
