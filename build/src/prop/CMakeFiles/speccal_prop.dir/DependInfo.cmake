
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prop/fading.cpp" "src/prop/CMakeFiles/speccal_prop.dir/fading.cpp.o" "gcc" "src/prop/CMakeFiles/speccal_prop.dir/fading.cpp.o.d"
  "/root/repo/src/prop/linkbudget.cpp" "src/prop/CMakeFiles/speccal_prop.dir/linkbudget.cpp.o" "gcc" "src/prop/CMakeFiles/speccal_prop.dir/linkbudget.cpp.o.d"
  "/root/repo/src/prop/obstruction.cpp" "src/prop/CMakeFiles/speccal_prop.dir/obstruction.cpp.o" "gcc" "src/prop/CMakeFiles/speccal_prop.dir/obstruction.cpp.o.d"
  "/root/repo/src/prop/pathloss.cpp" "src/prop/CMakeFiles/speccal_prop.dir/pathloss.cpp.o" "gcc" "src/prop/CMakeFiles/speccal_prop.dir/pathloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
