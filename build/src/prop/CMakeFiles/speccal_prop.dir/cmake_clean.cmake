file(REMOVE_RECURSE
  "CMakeFiles/speccal_prop.dir/fading.cpp.o"
  "CMakeFiles/speccal_prop.dir/fading.cpp.o.d"
  "CMakeFiles/speccal_prop.dir/linkbudget.cpp.o"
  "CMakeFiles/speccal_prop.dir/linkbudget.cpp.o.d"
  "CMakeFiles/speccal_prop.dir/obstruction.cpp.o"
  "CMakeFiles/speccal_prop.dir/obstruction.cpp.o.d"
  "CMakeFiles/speccal_prop.dir/pathloss.cpp.o"
  "CMakeFiles/speccal_prop.dir/pathloss.cpp.o.d"
  "libspeccal_prop.a"
  "libspeccal_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
