# Empty compiler generated dependencies file for speccal_prop.
# This may be replaced when dependencies are built.
