file(REMOVE_RECURSE
  "CMakeFiles/speccal_dsp.dir/fft.cpp.o"
  "CMakeFiles/speccal_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/speccal_dsp.dir/fir.cpp.o"
  "CMakeFiles/speccal_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/speccal_dsp.dir/resampler.cpp.o"
  "CMakeFiles/speccal_dsp.dir/resampler.cpp.o.d"
  "CMakeFiles/speccal_dsp.dir/welch.cpp.o"
  "CMakeFiles/speccal_dsp.dir/welch.cpp.o.d"
  "CMakeFiles/speccal_dsp.dir/window.cpp.o"
  "CMakeFiles/speccal_dsp.dir/window.cpp.o.d"
  "libspeccal_dsp.a"
  "libspeccal_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
