# Empty dependencies file for speccal_dsp.
# This may be replaced when dependencies are built.
