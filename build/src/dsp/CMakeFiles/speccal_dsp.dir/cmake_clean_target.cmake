file(REMOVE_RECURSE
  "libspeccal_dsp.a"
)
