file(REMOVE_RECURSE
  "libspeccal_sdr.a"
)
