# Empty dependencies file for speccal_sdr.
# This may be replaced when dependencies are built.
