file(REMOVE_RECURSE
  "CMakeFiles/speccal_sdr.dir/antenna.cpp.o"
  "CMakeFiles/speccal_sdr.dir/antenna.cpp.o.d"
  "CMakeFiles/speccal_sdr.dir/emitter.cpp.o"
  "CMakeFiles/speccal_sdr.dir/emitter.cpp.o.d"
  "CMakeFiles/speccal_sdr.dir/sim.cpp.o"
  "CMakeFiles/speccal_sdr.dir/sim.cpp.o.d"
  "libspeccal_sdr.a"
  "libspeccal_sdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_sdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
