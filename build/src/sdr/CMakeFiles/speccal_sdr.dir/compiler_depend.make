# Empty compiler generated dependencies file for speccal_sdr.
# This may be replaced when dependencies are built.
