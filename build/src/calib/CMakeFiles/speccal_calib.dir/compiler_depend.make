# Empty compiler generated dependencies file for speccal_calib.
# This may be replaced when dependencies are built.
