file(REMOVE_RECURSE
  "CMakeFiles/speccal_calib.dir/classify.cpp.o"
  "CMakeFiles/speccal_calib.dir/classify.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/crosscheck.cpp.o"
  "CMakeFiles/speccal_calib.dir/crosscheck.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/fov.cpp.o"
  "CMakeFiles/speccal_calib.dir/fov.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/freqresp.cpp.o"
  "CMakeFiles/speccal_calib.dir/freqresp.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/hardware.cpp.o"
  "CMakeFiles/speccal_calib.dir/hardware.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/lo_calibration.cpp.o"
  "CMakeFiles/speccal_calib.dir/lo_calibration.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/ml.cpp.o"
  "CMakeFiles/speccal_calib.dir/ml.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/pipeline.cpp.o"
  "CMakeFiles/speccal_calib.dir/pipeline.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/scheduler.cpp.o"
  "CMakeFiles/speccal_calib.dir/scheduler.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/survey.cpp.o"
  "CMakeFiles/speccal_calib.dir/survey.cpp.o.d"
  "CMakeFiles/speccal_calib.dir/trust.cpp.o"
  "CMakeFiles/speccal_calib.dir/trust.cpp.o.d"
  "libspeccal_calib.a"
  "libspeccal_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speccal_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
