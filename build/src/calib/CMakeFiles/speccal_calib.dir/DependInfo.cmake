
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/classify.cpp" "src/calib/CMakeFiles/speccal_calib.dir/classify.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/classify.cpp.o.d"
  "/root/repo/src/calib/crosscheck.cpp" "src/calib/CMakeFiles/speccal_calib.dir/crosscheck.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/crosscheck.cpp.o.d"
  "/root/repo/src/calib/fov.cpp" "src/calib/CMakeFiles/speccal_calib.dir/fov.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/fov.cpp.o.d"
  "/root/repo/src/calib/freqresp.cpp" "src/calib/CMakeFiles/speccal_calib.dir/freqresp.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/freqresp.cpp.o.d"
  "/root/repo/src/calib/hardware.cpp" "src/calib/CMakeFiles/speccal_calib.dir/hardware.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/hardware.cpp.o.d"
  "/root/repo/src/calib/lo_calibration.cpp" "src/calib/CMakeFiles/speccal_calib.dir/lo_calibration.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/lo_calibration.cpp.o.d"
  "/root/repo/src/calib/ml.cpp" "src/calib/CMakeFiles/speccal_calib.dir/ml.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/ml.cpp.o.d"
  "/root/repo/src/calib/pipeline.cpp" "src/calib/CMakeFiles/speccal_calib.dir/pipeline.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/pipeline.cpp.o.d"
  "/root/repo/src/calib/scheduler.cpp" "src/calib/CMakeFiles/speccal_calib.dir/scheduler.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/scheduler.cpp.o.d"
  "/root/repo/src/calib/survey.cpp" "src/calib/CMakeFiles/speccal_calib.dir/survey.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/survey.cpp.o.d"
  "/root/repo/src/calib/trust.cpp" "src/calib/CMakeFiles/speccal_calib.dir/trust.cpp.o" "gcc" "src/calib/CMakeFiles/speccal_calib.dir/trust.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/airtraffic/CMakeFiles/speccal_airtraffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/speccal_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/tv/CMakeFiles/speccal_tv.dir/DependInfo.cmake"
  "/root/repo/build/src/adsb/CMakeFiles/speccal_adsb.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/speccal_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/speccal_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/speccal_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/speccal_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speccal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
