file(REMOVE_RECURSE
  "libspeccal_calib.a"
)
